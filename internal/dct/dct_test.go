package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/timeseries"
)

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func TestTransformMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 30, 64, 100} {
		s := randSeries(rng, n)
		fast := Transform(s)
		naive := TransformNaive(s)
		if !timeseries.Equal(fast, naive, 1e-8) {
			t.Errorf("n=%d: fast DCT diverges from naive", n)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 30, 64} {
		c := randSeries(rng, n)
		fast := Inverse(c)
		naive := InverseNaive(c)
		if !timeseries.Equal(fast, naive, 1e-8) {
			t.Errorf("n=%d: fast inverse DCT diverges from naive", n)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 32, 100, 128} {
		s := randSeries(rng, n)
		got := Inverse(Transform(s))
		if !timeseries.Equal(got, s, 1e-8) {
			t.Errorf("n=%d: DCT round trip diverged", n)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	if Transform(nil) != nil || Inverse(nil) != nil {
		t.Error("empty transform results not nil")
	}
}

// Property: the orthonormal DCT preserves energy (Parseval).
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		s := randSeries(rng, n)
		c := Transform(s)
		var es, ec float64
		for i := range s {
			es += s[i] * s[i]
			ec += c[i] * c[i]
		}
		return math.Abs(es-ec) < 1e-6*(1+es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConstantSignalIsSingleCoefficient(t *testing.T) {
	s := timeseries.Series{5, 5, 5, 5, 5}
	c := Transform(s)
	if math.Abs(c[0]-5*math.Sqrt(5)) > 1e-9 {
		t.Errorf("DC coefficient = %v, want 5√5", c[0])
	}
	for _, v := range c[1:] {
		if math.Abs(v) > 1e-9 {
			t.Errorf("constant signal has AC energy: %v", c)
			break
		}
	}
}

func TestTopBFullBudgetExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randSeries(rng, 33)
	syn := TopB(s, 33)
	if !timeseries.Equal(syn.Reconstruct(), s, 1e-8) {
		t.Error("full-budget DCT synopsis is not lossless")
	}
	if syn.Cost() != 66 {
		t.Errorf("Cost = %d, want 66", syn.Cost())
	}
}

// Property: SSE decreases weakly as the kept-coefficient count grows.
func TestTopBMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeries(rng, 40)
		prev := math.Inf(1)
		for b := 0; b <= 40; b += 5 {
			rec := TopB(s, b).Reconstruct()
			var sse float64
			for i := range s {
				d := s[i] - rec[i]
				sse += d * d
			}
			if sse > prev+1e-9 {
				return false
			}
			prev = sse
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestApproximateRowsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := []timeseries.Series{randSeries(rng, 30), randSeries(rng, 30)}
	out := ApproximateRows(rows, 20)
	if len(out) != 2 || len(out[0]) != 30 || len(out[1]) != 30 {
		t.Fatal("ApproximateRows changed the shape")
	}
}

func TestApproximateSmoothSignal(t *testing.T) {
	// A single cosine is captured exactly by one DCT coefficient (plus DC).
	n := 64
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 3 * math.Cos(math.Pi*float64(5)*float64(2*i+1)/float64(2*n))
	}
	rec := Approximate(s, 4) // 2 coefficients
	var sse float64
	for i := range s {
		d := s[i] - rec[i]
		sse += d * d
	}
	if sse > 1e-9 {
		t.Errorf("pure cosine not captured by 2 coefficients: sse=%v", sse)
	}
}
