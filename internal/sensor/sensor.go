// Package sensor provides the on-device streaming front end of the
// framework: samples arrive one tick at a time, accumulate in the N×M
// collection buffer of Section 3.2, and every full buffer is compressed
// (optionally under the Section 4.4 adaptive schedule), framed for the
// wire, and handed to a caller-supplied sink — a radio, a TCP connection,
// or a log file.
package sensor

import (
	"errors"
	"fmt"
	"sync"

	"sbr/internal/core"
	"sbr/internal/obs"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// Sink consumes one finished transmission: the decoded form for in-process
// receivers and the wire frame for real transports. Returning an error
// aborts the Record call that triggered the flush; the batch is dropped
// (sensors do not retransmit — Section 3.2's batch model).
type Sink func(t *core.Transmission, frame []byte) error

// Config assembles a streaming sensor.
type Config struct {
	// Core is the SBR configuration (bandwidth budget, base-signal buffer,
	// metric, builder…).
	Core core.Config

	// Quantities is N: samples per tick.
	Quantities int

	// BatchLen is M: ticks per transmission.
	BatchLen int

	// Adaptive, when non-nil, enables the Section 4.4 scheduler with this
	// policy; nil runs the full SBR algorithm on every batch.
	Adaptive *core.AdaptivePolicy

	// Rates optionally gives each quantity its own sampling schedule
	// (footnote 2 of the paper): quantity q stores a reading every
	// Rates[q] ticks and is linearly interpolated back to BatchLen points
	// at flush time, so the compressed batch stays rectangular. Nil or a
	// rate of 1 means every tick. Rates must divide into at least one
	// stored sample per batch.
	Rates []int
}

// validateRates checks the per-quantity schedules.
func (c Config) validateRates() error {
	if c.Rates == nil {
		return nil
	}
	if len(c.Rates) != c.Quantities {
		return fmt.Errorf("sensor: %d rates for %d quantities", len(c.Rates), c.Quantities)
	}
	for q, r := range c.Rates {
		if r < 1 {
			return fmt.Errorf("sensor: quantity %d has rate %d, want >= 1", q, r)
		}
		if r > c.BatchLen {
			return fmt.Errorf("sensor: quantity %d rate %d exceeds batch length %d", q, r, c.BatchLen)
		}
	}
	return nil
}

// Stats summarises a sensor's activity.
type Stats struct {
	Samples    int // ticks recorded
	Batches    int // transmissions produced
	FullRuns   int // batches that ran the full SBR algorithm
	CostValues int // abstract bandwidth consumed, in values
	FrameBytes int // concrete bytes handed to the sink
}

// Sensor is the streaming front end. It is safe for concurrent use, though
// a physical sensor typically records from a single loop.
type Sensor struct {
	cfg  Config
	sink Sink

	mu       sync.Mutex
	buf      []timeseries.Series
	ticks    int // ticks in the current batch
	adaptive *core.AdaptiveCompressor
	plain    *core.Compressor
	stats    Stats
}

// New validates the configuration and creates a sensor.
func New(cfg Config, sink Sink) (*Sensor, error) {
	if cfg.Quantities <= 0 {
		return nil, errors.New("sensor: Quantities must be positive")
	}
	if cfg.BatchLen <= 0 {
		return nil, errors.New("sensor: BatchLen must be positive")
	}
	if sink == nil {
		return nil, errors.New("sensor: nil sink")
	}
	if err := cfg.validateRates(); err != nil {
		return nil, err
	}
	s := &Sensor{cfg: cfg, sink: sink, buf: make([]timeseries.Series, cfg.Quantities)}
	var err error
	if cfg.Adaptive != nil {
		s.adaptive, err = core.NewAdaptiveCompressor(cfg.Core, *cfg.Adaptive)
	} else {
		s.plain, err = core.NewCompressor(cfg.Core)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Record appends one tick: exactly one sample per quantity. When the
// buffer reaches BatchLen ticks it is compressed and flushed to the sink
// before Record returns.
func (s *Sensor) Record(sample ...float64) error {
	if len(sample) != s.cfg.Quantities {
		return fmt.Errorf("sensor: %d samples for %d quantities", len(sample), s.cfg.Quantities)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for q, v := range sample {
		if s.cfg.Rates != nil && s.ticks%s.cfg.Rates[q] != 0 {
			continue // this quantity is not scheduled this tick
		}
		s.buf[q] = append(s.buf[q], v)
	}
	s.ticks++
	s.stats.Samples++
	if s.ticks < s.cfg.BatchLen {
		return nil
	}
	return s.flushLocked()
}

// Pending returns how many ticks sit in the partial buffer.
func (s *Sensor) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Stats returns a snapshot of the activity counters.
func (s *Sensor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// BaseSignal returns a copy of the current base signal.
func (s *Sensor) BaseSignal() timeseries.Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compressor().BaseSignal()
}

// Instrument registers the sensor's encode fast-path metrics (scan-cache
// hits, tail shifts, search evaluations…) on reg. Registration is
// idempotent, so a fleet of sensors can share one registry.
func (s *Sensor) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compressor().Instrument(reg)
}

func (s *Sensor) compressor() *core.Compressor {
	if s.adaptive != nil {
		return s.adaptive.Compressor()
	}
	return s.plain
}

// flushLocked compresses the full buffer and delivers it. The buffer is
// cleared whether or not the sink accepts the frame: the sensor's memory
// is needed for the next batch either way (Section 3.2).
func (s *Sensor) flushLocked() error {
	batch := s.buf
	s.buf = make([]timeseries.Series, s.cfg.Quantities)
	s.ticks = 0
	if s.cfg.Rates != nil {
		// Align slower quantities back onto the common BatchLen grid
		// (footnote 2): the decompressed series keeps one value per tick.
		for q := range batch {
			if len(batch[q]) != s.cfg.BatchLen {
				batch[q] = timeseries.Lerp(batch[q], s.cfg.BatchLen)
			}
		}
	}

	var (
		t    *core.Transmission
		full = true
		err  error
	)
	if s.adaptive != nil {
		t, full, err = s.adaptive.Encode(batch)
	} else {
		t, err = s.plain.Encode(batch)
	}
	if err != nil {
		return fmt.Errorf("sensor: compressing batch: %w", err)
	}
	frame, err := wire.Encode(t)
	if err != nil {
		return fmt.Errorf("sensor: framing batch: %w", err)
	}
	s.stats.Batches++
	if full {
		s.stats.FullRuns++
	}
	s.stats.CostValues += t.Cost
	s.stats.FrameBytes += len(frame)
	return s.sink(t, frame)
}
