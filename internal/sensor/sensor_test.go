package sensor

import (
	"errors"
	"math"
	"testing"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

func testConfig() Config {
	return Config{
		Core:       core.Config{TotalBand: 40, MBase: 16, Metric: metrics.SSE},
		Quantities: 2,
		BatchLen:   64,
	}
}

// tick produces a deterministic 2-quantity sample.
func tick(i int) []float64 {
	t := float64(i) / 9
	return []float64{10 * math.Sin(t), 3*math.Cos(t) + 1}
}

func TestSensorFlushesFullBatches(t *testing.T) {
	var got []*core.Transmission
	s, err := New(testConfig(), func(tr *core.Transmission, frame []byte) error {
		if len(frame) == 0 {
			t.Error("empty frame")
		}
		got = append(got, tr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Record(tick(i)...); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 { // 200/64
		t.Fatalf("%d batches flushed, want 3", len(got))
	}
	if s.Pending() != 200-3*64 {
		t.Errorf("pending %d ticks, want 8", s.Pending())
	}
	stats := s.Stats()
	if stats.Samples != 200 || stats.Batches != 3 || stats.FullRuns != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.CostValues == 0 || stats.FrameBytes == 0 {
		t.Error("missing accounting")
	}
	for i, tr := range got {
		if tr.Seq != i {
			t.Errorf("batch %d has seq %d", i, tr.Seq)
		}
		if tr.Cost > 40 {
			t.Errorf("batch %d cost %d exceeds budget", i, tr.Cost)
		}
	}
}

func TestSensorStreamIsDecodable(t *testing.T) {
	cfg := testConfig()
	dec, err := core.NewDecoder(cfg.Core)
	if err != nil {
		t.Fatal(err)
	}
	var recon []timeseries.Series
	s, err := New(cfg, func(_ *core.Transmission, frame []byte) error {
		tr, err := wire.DecodeBytes(frame)
		if err != nil {
			return err
		}
		rows, err := dec.Decode(tr)
		if err != nil {
			return err
		}
		if recon == nil {
			recon = make([]timeseries.Series, len(rows))
		}
		for q := range rows {
			recon[q] = append(recon[q], rows[q]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var orig [2]timeseries.Series
	for i := 0; i < 256; i++ {
		sm := tick(i)
		orig[0] = append(orig[0], sm[0])
		orig[1] = append(orig[1], sm[1])
		if err := s.Record(sm...); err != nil {
			t.Fatal(err)
		}
	}
	if len(recon) != 2 || len(recon[0]) != 256 {
		t.Fatalf("reconstructed shape wrong")
	}
	for q := range recon {
		mse := metrics.MeanSquared(orig[q][:256], recon[q])
		if mse > orig[q].Variance() {
			t.Errorf("quantity %d reconstruction MSE %v too high", q, mse)
		}
	}
	if !timeseries.Equal(s.BaseSignal(), dec.BaseSignal(), 0) {
		t.Error("sensor/decoder base signals diverged")
	}
}

func TestSensorAdaptiveScheduling(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = &core.AdaptivePolicy{MinFullRuns: 1}
	s, err := New(cfg, func(*core.Transmission, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5*64; i++ {
		if err := s.Record(tick(i)...); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if stats.Batches != 5 {
		t.Fatalf("%d batches", stats.Batches)
	}
	if stats.FullRuns >= stats.Batches {
		t.Errorf("adaptive sensor ran the full algorithm on every batch (%d/%d)",
			stats.FullRuns, stats.Batches)
	}
	if stats.FullRuns < 1 {
		t.Error("no full runs at all")
	}
}

func TestSensorValidation(t *testing.T) {
	sink := func(*core.Transmission, []byte) error { return nil }
	if _, err := New(Config{Core: core.Config{TotalBand: 10}, Quantities: 0, BatchLen: 4}, sink); err == nil {
		t.Error("zero quantities accepted")
	}
	if _, err := New(Config{Core: core.Config{TotalBand: 10}, Quantities: 1, BatchLen: 0}, sink); err == nil {
		t.Error("zero batch length accepted")
	}
	if _, err := New(testConfig(), nil); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := New(Config{Core: core.Config{}, Quantities: 1, BatchLen: 4}, sink); err == nil {
		t.Error("invalid core config accepted")
	}
	s, err := New(testConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(1.0); err == nil {
		t.Error("wrong sample width accepted")
	}
}

func TestSensorSinkErrorPropagates(t *testing.T) {
	boom := errors.New("radio down")
	s, err := New(testConfig(), func(*core.Transmission, []byte) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 64; i++ {
		last = s.Record(tick(i)...)
	}
	if !errors.Is(last, boom) {
		t.Errorf("sink error not propagated: %v", last)
	}
	// The buffer was cleared: recording continues with the next batch.
	if s.Pending() != 0 {
		t.Errorf("pending = %d after failed flush, want 0", s.Pending())
	}
	if err := s.Record(tick(0)...); err != nil {
		t.Errorf("recording after failed flush: %v", err)
	}
}

func TestSensorMultiRate(t *testing.T) {
	cfg := testConfig()
	cfg.Rates = []int{1, 4} // quantity 1 sampled every 4th tick
	var batches int
	var lastN, lastM int
	s, err := New(cfg, func(tr *core.Transmission, _ []byte) error {
		batches++
		lastN, lastM = tr.N, tr.M
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*64; i++ {
		if err := s.Record(tick(i)...); err != nil {
			t.Fatal(err)
		}
	}
	if batches != 2 {
		t.Fatalf("%d batches", batches)
	}
	// The aligned batch stays rectangular at BatchLen despite the slower
	// schedule.
	if lastN != 2 || lastM != 64 {
		t.Errorf("batch shape %dx%d, want 2x64", lastN, lastM)
	}
}

func TestSensorMultiRateValidation(t *testing.T) {
	sink := func(*core.Transmission, []byte) error { return nil }
	cfg := testConfig()
	cfg.Rates = []int{1}
	if _, err := New(cfg, sink); err == nil {
		t.Error("wrong rate count accepted")
	}
	cfg.Rates = []int{1, 0}
	if _, err := New(cfg, sink); err == nil {
		t.Error("zero rate accepted")
	}
	cfg.Rates = []int{1, 1000}
	if _, err := New(cfg, sink); err == nil {
		t.Error("rate above batch length accepted")
	}
}
