package sensor_test

import (
	"fmt"
	"math"

	"sbr/internal/core"
	"sbr/internal/sensor"
)

// Example shows the streaming front end: samples arrive one tick at a
// time; every 128 ticks a batch is compressed, framed, and handed to the
// sink (here just counted — in a deployment this is the radio or a
// netio.Client).
func Example() {
	flushed := 0
	s, err := sensor.New(sensor.Config{
		Core:       core.Config{TotalBand: 50, MBase: 32},
		Quantities: 2,
		BatchLen:   128,
		Adaptive:   &core.AdaptivePolicy{MinFullRuns: 1},
	}, func(t *core.Transmission, frame []byte) error {
		flushed++
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 300; i++ {
		tv := float64(i) / 10
		if err := s.Record(math.Sin(tv), 2*math.Cos(tv)); err != nil {
			fmt.Println(err)
			return
		}
	}
	st := s.Stats()
	fmt.Printf("flushed %d batches, %d ticks pending, %d full SBR runs\n",
		flushed, s.Pending(), st.FullRuns)
	// Output:
	// flushed 2 batches, 44 ticks pending, 1 full SBR runs
}
