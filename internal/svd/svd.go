// Package svd provides the small dense linear-algebra kernel needed by the
// GetBaseSVD alternative base-signal construction of the paper's Appendix:
// a cyclic Jacobi eigensolver for symmetric matrices, and the Gram-matrix
// route to the right singular vectors of a rectangular matrix
// (the eigenvectors of RᵀR ordered by decreasing eigenvalue).
package svd

import "math"

// SymEigen computes the eigenvalues and eigenvectors of the symmetric n×n
// matrix a using the cyclic Jacobi method. The input is not modified.
// Eigenpairs are returned in order of decreasing eigenvalue; vectors[i] is
// the unit eigenvector for values[i].
func SymEigen(a [][]float64) (values []float64, vectors [][]float64) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	// Working copy of the matrix and accumulated rotation matrix V.
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(m)
		if off < tol*frobeniusNorm(m) || off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rotate(m, v, p, q)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m[i][i]
	}
	// Column i of V is the eigenvector of eigenvalue m[i][i]; extract and
	// sort by decreasing eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ { // selection sort: n is small (W ≈ √n of data)
		best := i
		for j := i + 1; j < n; j++ {
			if values[idx[j]] > values[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	sortedVals := make([]float64, n)
	vectors = make([][]float64, n)
	for i, j := range idx {
		sortedVals[i] = values[j]
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = v[r][j]
		}
		vectors[i] = vec
	}
	return sortedVals, vectors
}

// rotate applies one Jacobi rotation zeroing m[p][q], accumulating into v.
func rotate(m, v [][]float64, p, q int) {
	apq := m[p][q]
	if apq == 0 {
		return
	}
	app, aqq := m[p][p], m[q][q]
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	n := len(m)
	for i := 0; i < n; i++ {
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[i][q] = s*mip + c*miq
	}
	for i := 0; i < n; i++ {
		mpi, mqi := m[p][i], m[q][i]
		m[p][i] = c*mpi - s*mqi
		m[q][i] = s*mpi + c*mqi
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}

func offDiagonalNorm(m [][]float64) float64 {
	var t float64
	for i := range m {
		for j := range m[i] {
			if i != j {
				t += m[i][j] * m[i][j]
			}
		}
	}
	return math.Sqrt(t)
}

func frobeniusNorm(m [][]float64) float64 {
	var t float64
	for i := range m {
		for j := range m[i] {
			t += m[i][j] * m[i][j]
		}
	}
	return math.Sqrt(t)
}

// RightSingularVectors returns the top-k right singular vectors of the
// rows×cols matrix r, computed as the leading eigenvectors of the Gram
// matrix RᵀR. This is exactly the construction GetBaseSVD needs: each
// vector has length cols and captures a dominant linear trend across the
// rows.
func RightSingularVectors(r [][]float64, k int) [][]float64 {
	if len(r) == 0 {
		return nil
	}
	cols := len(r[0])
	gram := make([][]float64, cols)
	for i := range gram {
		gram[i] = make([]float64, cols)
	}
	for _, row := range r {
		for i := 0; i < cols; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			for j := i; j < cols; j++ {
				gram[i][j] += ri * row[j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			gram[i][j] = gram[j][i]
		}
	}
	_, vecs := SymEigen(gram)
	if k > len(vecs) {
		k = len(vecs)
	}
	return vecs[:k]
}
