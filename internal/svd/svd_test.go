package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := [][]float64{
		{3, 0, 0},
		{0, 7, 0},
		{0, 0, 1},
	}
	vals, vecs := SymEigen(a)
	want := []float64{7, 3, 1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-9 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// The top eigenvector must be ±e2.
	if math.Abs(math.Abs(vecs[0][1])-1) > 1e-9 {
		t.Errorf("top eigenvector = %v, want ±e2", vecs[0])
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs := SymEigen(a)
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Top eigenvector ∝ (1,1)/√2.
	if math.Abs(math.Abs(vecs[0][0])-1/math.Sqrt2) > 1e-9 ||
		math.Abs(vecs[0][0]-vecs[0][1]) > 1e-9 {
		t.Errorf("top eigenvector = %v", vecs[0])
	}
}

func TestSymEigenEmpty(t *testing.T) {
	vals, vecs := SymEigen(nil)
	if vals != nil || vecs != nil {
		t.Error("empty input must give nil results")
	}
}

// Property: for random symmetric matrices, A·v = λ·v holds for every
// returned pair, eigenvalues are descending, and vectors are orthonormal.
func TestSymEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64() * 5
				a[i][j], a[j][i] = v, v
			}
		}
		vals, vecs := SymEigen(a)
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		for k := 0; k < n; k++ {
			// residual ||A v − λ v||
			var res float64
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += a[i][j] * vecs[k][j]
				}
				d := av - vals[k]*vecs[k][i]
				res += d * d
			}
			if math.Sqrt(res) > 1e-6 {
				return false
			}
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += vecs[i][r] * vecs[j][r]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRightSingularVectors(t *testing.T) {
	// Rank-1 matrix: rows are multiples of (3,4)/5.
	r := [][]float64{
		{3, 4},
		{6, 8},
		{-3, -4},
	}
	vecs := RightSingularVectors(r, 2)
	if len(vecs) != 2 {
		t.Fatalf("%d vectors, want 2", len(vecs))
	}
	v := vecs[0]
	if math.Abs(math.Abs(v[0])-0.6) > 1e-9 || math.Abs(math.Abs(v[1])-0.8) > 1e-9 {
		t.Errorf("top right singular vector = %v, want ±(0.6,0.8)", v)
	}
	if RightSingularVectors(nil, 3) != nil {
		t.Error("empty input must give nil")
	}
	// k larger than dimensionality clamps.
	if got := RightSingularVectors(r, 10); len(got) != 2 {
		t.Errorf("k clamp failed: %d vectors", len(got))
	}
}

// Property: the top right singular vector maximises ||R·v|| over unit
// vectors — checked against random probes.
func TestTopSingularVectorMaximisesEnergy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(6)+2, rng.Intn(4)+2
		r := make([][]float64, rows)
		for i := range r {
			r[i] = make([]float64, cols)
			for j := range r[i] {
				r[i][j] = rng.NormFloat64()
			}
		}
		vecs := RightSingularVectors(r, 1)
		energy := func(v []float64) float64 {
			var e float64
			for _, row := range r {
				var dot float64
				for j := range row {
					dot += row[j] * v[j]
				}
				e += dot * dot
			}
			return e
		}
		top := energy(vecs[0])
		for probe := 0; probe < 20; probe++ {
			v := make([]float64, cols)
			var norm float64
			for j := range v {
				v[j] = rng.NormFloat64()
				norm += v[j] * v[j]
			}
			norm = math.Sqrt(norm)
			for j := range v {
				v[j] /= norm
			}
			if energy(v) > top+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
