package segstore

import (
	"bytes"
	"os"
	"testing"
)

// FuzzScanSegment feeds arbitrary bytes to the segment reader: whatever a
// crashed disk or a corrupt transfer hands us, scanning and decoding must
// fail cleanly (error or torn-tail truncation), never panic, and never
// claim more good bytes than the input holds.
func FuzzScanSegment(f *testing.F) {
	cfg := testConfig()

	// Seed with a real segment and mutations of it so the fuzzer starts
	// past the magic/header checks. SegmentChunks large → one sealed file
	// with header, records, footer and trailer all present.
	dir := f.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 100})
	if err != nil {
		f.Fatal(err)
	}
	feedStore(f, s, cfg, "node", makeFrames(f, cfg, 4, 16), 0)
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(activeSegPath(f, dir, "node"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	f.Add(seg[:len(seg)-5])
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("SBRSEG1\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		scan, err := scanSegment(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if scan.Good < 0 || scan.Good > int64(len(data)) {
			t.Fatalf("Good offset %d outside input of %d bytes", scan.Good, len(data))
		}
		if len(scan.Recs) != len(scan.Frames) {
			t.Fatalf("%d record metas vs %d frames", len(scan.Recs), len(scan.Frames))
		}
		// Decoding survivors must also be panic-free; errors are fine (the
		// frames may be garbage that happened to checksum).
		_, _ = decodeSegmentChunks(cfg, scan)
	})
}
