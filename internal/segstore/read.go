package segstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sbr/internal/core"
	"sbr/internal/timeseries"
)

// segCache is a small LRU of decoded segments. Cold queries cluster — a
// range query touches consecutive chunks of one segment, a dashboard
// refreshes the same window — so caching whole decoded segments turns a
// burst of cold reads into one segment decode. Keys carry the record
// count, so a growing active segment never serves stale entries.
type segCache struct {
	cap     int
	entries map[string]*segCacheEntry
	order   []string // LRU order, oldest first
}

type segCacheEntry struct {
	firstChunk int
	rows       [][]timeseries.Series // per record, per quantity
	bounds     []float64             // per record
}

func newSegCache(capacity int) *segCache {
	return &segCache{cap: capacity, entries: make(map[string]*segCacheEntry)}
}

func cacheKey(sensor string, firstChunk, records int) string {
	return fmt.Sprintf("%s\x00%d:%d", sensor, firstChunk, records)
}

func (c *segCache) get(key string) *segCacheEntry {
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.touch(key)
	return e
}

func (c *segCache) put(key string, e *segCacheEntry) {
	if _, ok := c.entries[key]; !ok {
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
	} else {
		c.touch(key)
	}
	c.entries[key] = e
}

func (c *segCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// dropSensor evicts every cached segment of one sensor (retention purged
// some of them; precision is not worth the bookkeeping).
func (c *segCache) dropSensor(sensor string) {
	kept := c.order[:0]
	for _, k := range c.order {
		if len(k) > len(sensor) && k[:len(sensor)] == sensor && k[len(sensor)] == 0 {
			delete(c.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	c.order = kept
}

// ChunkRows serves a cold read: the reconstructed rows and error bound of
// one archived chunk, byte-identical to what the live station computed
// when the transmission arrived. Only the segment holding the chunk is
// loaded and decoded (and cached for the next neighbouring read).
func (s *Store) ChunkRows(sensor string, chunk int) ([]timeseries.Series, float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sensors[sensor]
	if ss == nil {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownSensor, sensor)
	}
	if chunk < ss.purged {
		return nil, 0, fmt.Errorf("%w: sensor %q chunk %d (archive starts at %d)",
			ErrPurged, sensor, chunk, ss.purged)
	}
	if chunk >= ss.nextChunk() {
		return nil, 0, fmt.Errorf("segstore: sensor %q chunk %d not yet archived", sensor, chunk)
	}
	e, err := s.decodedSegment(sensor, ss, chunk)
	if err != nil {
		return nil, 0, err
	}
	i := chunk - e.firstChunk
	if i < 0 || i >= len(e.rows) {
		return nil, 0, fmt.Errorf("segstore: sensor %q chunk %d missing from its segment", sensor, chunk)
	}
	return e.rows[i], e.bounds[i], nil
}

// decodedSegment returns the decoded segment holding chunk, from the cache
// when warm. Caller holds s.mu; the chunk is known to be in range.
func (s *Store) decodedSegment(sensor string, ss *sensorSegs, chunk int) (*segCacheEntry, error) {
	if a := ss.active; a != nil && chunk >= a.header.FirstChunk {
		key := cacheKey(sensor, a.header.FirstChunk, len(a.recs))
		if e := s.cache.get(key); e != nil {
			return e, nil
		}
		scan := segScan{Header: a.header, Recs: a.recs, Frames: a.frames}
		e, err := decodeScan(s.opts.Config, scan)
		if err != nil {
			return nil, err
		}
		s.met.coldReads.Inc()
		s.cache.put(key, e)
		return e, nil
	}
	i := sort.Search(len(ss.sealed), func(i int) bool {
		return ss.sealed[i].LastChunk >= chunk
	})
	if i >= len(ss.sealed) || ss.sealed[i].FirstChunk > chunk {
		return nil, fmt.Errorf("segstore: sensor %q chunk %d not covered by any segment", sensor, chunk)
	}
	sm := ss.sealed[i]
	key := cacheKey(sensor, sm.FirstChunk, sm.LastChunk-sm.FirstChunk+1)
	if e := s.cache.get(key); e != nil {
		return e, nil
	}
	scan, err := s.scanSealed(sm)
	if err != nil {
		return nil, err
	}
	e, err := decodeScan(s.opts.Config, scan)
	if err != nil {
		return nil, err
	}
	s.met.coldReads.Inc()
	s.cache.put(key, e)
	return e, nil
}

// scanSealed loads one sealed segment from disk, verifying every checksum.
func (s *Store) scanSealed(sm segMeta) (segScan, error) {
	path := filepath.Join(s.dir, filepath.FromSlash(sm.File))
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("segstore: opening sealed segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return segScan{}, err
	}
	scan, err := scanSegment(f, fi.Size())
	if err != nil {
		return segScan{}, fmt.Errorf("segstore: sealed segment %s: %w", sm.File, err)
	}
	if got := len(scan.Recs); got != sm.LastChunk-sm.FirstChunk+1 {
		return segScan{}, fmt.Errorf("segstore: sealed segment %s holds %d whole records, manifest says %d",
			sm.File, got, sm.LastChunk-sm.FirstChunk+1)
	}
	return scan, nil
}

// decodeScan runs the cold decode of one scanned segment and packages it
// as a cache entry.
func decodeScan(cfg core.Config, scan segScan) (*segCacheEntry, error) {
	rows, err := decodeSegmentChunks(cfg, scan)
	if err != nil {
		return nil, err
	}
	bounds := make([]float64, len(scan.Recs))
	for i, r := range scan.Recs {
		bounds[i] = r.Bound
	}
	return &segCacheEntry{firstChunk: scan.Header.FirstChunk, rows: rows, bounds: bounds}, nil
}

// ReplayFrom streams the archived raw frames of one sensor with chunk
// index >= from, in order, to fn. It is the recovery tail replay: the
// station calls it with the chunk count its checkpoint covers and feeds
// each frame back through its receive path. Frames are read outside the
// store lock, so fn may re-enter the station.
func (s *Store) ReplayFrom(sensor string, from int, fn func(chunk int, frame []byte) error) error {
	s.mu.Lock()
	ss := s.sensors[sensor]
	if ss == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSensor, sensor)
	}
	if from < ss.purged {
		s.mu.Unlock()
		return fmt.Errorf("%w: sensor %q replay from %d (archive starts at %d)",
			ErrPurged, sensor, from, ss.purged)
	}
	sealed := make([]segMeta, 0, len(ss.sealed))
	for _, sm := range ss.sealed {
		if sm.LastChunk >= from {
			sealed = append(sealed, sm)
		}
	}
	var activeFirst int
	var activeFrames [][]byte
	if a := ss.active; a != nil {
		activeFirst = a.header.FirstChunk
		activeFrames = a.frames
	}
	s.mu.Unlock()

	for _, sm := range sealed {
		scan, err := s.scanSealed(sm)
		if err != nil {
			return err
		}
		for i, frame := range scan.Frames {
			chunk := scan.Header.FirstChunk + i
			if chunk < from {
				continue
			}
			if err := fn(chunk, frame); err != nil {
				return err
			}
		}
	}
	for i, frame := range activeFrames {
		chunk := activeFirst + i
		if chunk < from {
			continue
		}
		if err := fn(chunk, frame); err != nil {
			return err
		}
	}
	return nil
}
