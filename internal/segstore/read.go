package segstore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sbr/internal/core"
	"sbr/internal/timeseries"
)

// Cold-read path. The store lock (s.mu) is a leaf lock held only for
// index resolution and cache bookkeeping — never across a disk read or a
// segment decode. A cold fetch resolves the segment reference under the
// lock, then decodes outside it, with concurrent misses on the same
// segment deduplicated by a singleflight table: the first reader decodes,
// everyone else joins its result. Range reads spanning several segments
// fan the misses out over a bounded worker pool and are merged back in
// chunk order.

// segCache is a small LRU of decoded segments. Cold queries cluster — a
// range query touches consecutive chunks of one segment, a dashboard
// refreshes the same window — so caching whole decoded segments turns a
// burst of cold reads into one segment decode. Keys carry the record
// count, so a growing active segment never serves stale entries. The
// recency list is a doubly-linked list: get, put and eviction are all
// O(1) regardless of capacity.
type segCache struct {
	cap     int
	entries map[string]*list.Element // value: *cacheItem
	ll      *list.List               // LRU order, oldest at the front
}

type cacheItem struct {
	key string
	e   *segCacheEntry
}

type segCacheEntry struct {
	firstChunk int
	rows       [][]timeseries.Series // per record, per quantity
	bounds     []float64             // per record
}

func newSegCache(capacity int) *segCache {
	return &segCache{cap: capacity, entries: make(map[string]*list.Element), ll: list.New()}
}

func cacheKey(sensor string, firstChunk, records int) string {
	return fmt.Sprintf("%s\x00%d:%d", sensor, firstChunk, records)
}

func (c *segCache) get(key string) *segCacheEntry {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.ll.MoveToBack(el)
	return el.Value.(*cacheItem).e
}

func (c *segCache) put(key string, e *segCacheEntry) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).e = e
		c.ll.MoveToBack(el)
		return
	}
	c.entries[key] = c.ll.PushBack(&cacheItem{key: key, e: e})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Front()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
	}
}

// dropSensor evicts every cached segment of one sensor (retention purged
// some of them; precision is not worth the bookkeeping). O(cached
// segments), which the cache capacity bounds.
func (c *segCache) dropSensor(sensor string) {
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		it := el.Value.(*cacheItem)
		if len(it.key) > len(sensor) && it.key[:len(sensor)] == sensor && it.key[len(sensor)] == 0 {
			c.ll.Remove(el)
			delete(c.entries, it.key)
		}
		el = next
	}
}

// segRef is a decodable reference to one segment, resolved under s.mu and
// then safe to act on without it. For the active segment it captures the
// header and the current rec/frame slice headers — appends only ever grow
// those slices (never mutate delivered elements), so a captured prefix
// stays immutable; the record count is baked into the key, so the decode
// covers exactly the captured prefix. For sealed segments it carries the
// manifest entry; the file is immutable until retention unlinks it.
type segRef struct {
	key        string
	firstChunk int
	lastChunk  int
	sealed     bool
	meta       segMeta // sealed only
	scan       segScan // active only: captured in-memory scan
}

// flight is one in-progress segment decode; joiners block on done.
type flight struct {
	done chan struct{}
	e    *segCacheEntry
	err  error
}

// resolveRef locates the segment holding chunk. The caller holds s.mu and
// has bounds-checked chunk against [ss.purged, ss.nextChunk()).
func resolveRef(sensor string, ss *sensorSegs, chunk int) (segRef, error) {
	if a := ss.active; a != nil && chunk >= a.header.FirstChunk {
		return segRef{
			key:        cacheKey(sensor, a.header.FirstChunk, len(a.recs)),
			firstChunk: a.header.FirstChunk,
			lastChunk:  a.lastChunk(),
			scan:       segScan{Header: a.header, Recs: a.recs, Frames: a.frames},
		}, nil
	}
	i := sort.Search(len(ss.sealed), func(i int) bool {
		return ss.sealed[i].LastChunk >= chunk
	})
	if i >= len(ss.sealed) || ss.sealed[i].FirstChunk > chunk {
		return segRef{}, fmt.Errorf("segstore: sensor %q chunk %d not covered by any segment", sensor, chunk)
	}
	sm := ss.sealed[i]
	return segRef{
		key:        cacheKey(sensor, sm.FirstChunk, sm.LastChunk-sm.FirstChunk+1),
		firstChunk: sm.FirstChunk,
		lastChunk:  sm.LastChunk,
		sealed:     true,
		meta:       sm,
	}, nil
}

// fetchSegment returns the decoded segment ref points at: from the cache
// when warm, by joining an in-flight decode of the same segment when one
// exists, otherwise by decoding it here — outside the store lock — and
// publishing the result to cache and joiners.
func (s *Store) fetchSegment(ref segRef) (*segCacheEntry, error) {
	s.mu.Lock()
	return s.fetchLocked(ref)
}

// fetchLocked is fetchSegment entered with s.mu already held — callers
// that just resolved ref under the lock reach the warm cache without a
// second acquisition. The lock is released on every path before any
// waiting, disk read or decode.
func (s *Store) fetchLocked(ref segRef) (*segCacheEntry, error) {
	if e := s.cache.get(ref.key); e != nil {
		s.mu.Unlock()
		return e, nil
	}
	if f, ok := s.flights[ref.key]; ok {
		s.mu.Unlock()
		s.met.sfHits.Inc()
		select {
		case <-f.done:
		default:
			s.met.sfWaits.Inc()
			<-f.done
		}
		return f.e, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[ref.key] = f
	s.mu.Unlock()

	s.met.fetchParallel.Add(1)
	e, err := s.decodeRef(ref)
	s.met.fetchParallel.Add(-1)

	s.mu.Lock()
	delete(s.flights, ref.key)
	if err == nil {
		s.met.coldReads.Inc()
		s.cache.put(ref.key, e)
	}
	s.mu.Unlock()
	f.e, f.err = e, err
	close(f.done)
	return e, err
}

// decodeRef runs the actual segment load + decode. No store lock held:
// this is the disk I/O and CPU work the read path keeps off every lock.
func (s *Store) decodeRef(ref segRef) (*segCacheEntry, error) {
	scan := ref.scan
	if ref.sealed {
		var err error
		scan, err = s.scanSealed(ref.meta)
		if err != nil {
			return nil, err
		}
	}
	return decodeScan(s.opts.Config, scan)
}

// reclassify re-checks a failed cold fetch against the retention
// watermark: a sealed segment unlinked between ref resolution and the
// disk read surfaces as a read error, but the truthful answer — the same
// one a later query would get — is ErrPurged.
func (s *Store) reclassify(sensor string, chunk int, err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss := s.sensors[sensor]; ss != nil && chunk < ss.purged {
		return fmt.Errorf("%w: sensor %q chunk %d (archive starts at %d)",
			ErrPurged, sensor, chunk, ss.purged)
	}
	return err
}

// resolveChunk bounds-checks chunk and resolves its segment under s.mu.
func (s *Store) resolveChunk(sensor string, chunk int) (segRef, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolveLocked(sensor, chunk)
}

// resolveLocked is resolveChunk with s.mu already held.
func (s *Store) resolveLocked(sensor string, chunk int) (segRef, error) {
	ss := s.sensors[sensor]
	if ss == nil {
		return segRef{}, fmt.Errorf("%w: %q", ErrUnknownSensor, sensor)
	}
	if chunk < ss.purged {
		return segRef{}, fmt.Errorf("%w: sensor %q chunk %d (archive starts at %d)",
			ErrPurged, sensor, chunk, ss.purged)
	}
	if chunk >= ss.nextChunk() {
		return segRef{}, fmt.Errorf("segstore: sensor %q chunk %d not yet archived", sensor, chunk)
	}
	return resolveRef(sensor, ss, chunk)
}

// ChunkRows serves a cold read: the reconstructed rows and error bound of
// one archived chunk, byte-identical to what the live station computed
// when the transmission arrived. Only the segment holding the chunk is
// loaded and decoded (and cached for the next neighbouring read);
// concurrent misses on the same segment share one decode.
func (s *Store) ChunkRows(sensor string, chunk int) ([]timeseries.Series, float64, error) {
	s.mu.Lock()
	ref, err := s.resolveLocked(sensor, chunk)
	if err != nil {
		s.mu.Unlock()
		return nil, 0, err
	}
	e, err := s.fetchLocked(ref) // releases s.mu
	if err != nil {
		return nil, 0, s.reclassify(sensor, chunk, err)
	}
	i := chunk - e.firstChunk
	if i < 0 || i >= len(e.rows) {
		return nil, 0, fmt.Errorf("segstore: sensor %q chunk %d missing from its segment", sensor, chunk)
	}
	return e.rows[i], e.bounds[i], nil
}

// DefaultFetchWorkers bounds the parallel segment decodes of one range
// read when Options leaves FetchWorkers zero.
const DefaultFetchWorkers = 4

// ChunkRangeRows streams the reconstructed rows and error bounds of the
// archived chunks [from, to) of one sensor, in chunk order, to fn. The
// segments the range spans are resolved under one lock acquisition and
// their misses decoded in parallel across a bounded worker pool (cache
// hits and singleflight joins cost no worker); fn then runs sequentially
// in order, so callers need no locking of their own. A non-nil error from
// fn stops the stream and is returned.
func (s *Store) ChunkRangeRows(sensor string, from, to int, fn func(chunk int, rows []timeseries.Series, bound float64) error) error {
	if from >= to {
		return nil
	}
	s.mu.Lock()
	ss := s.sensors[sensor]
	if ss == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSensor, sensor)
	}
	if from < ss.purged {
		s.mu.Unlock()
		return fmt.Errorf("%w: sensor %q chunk %d (archive starts at %d)",
			ErrPurged, sensor, from, ss.purged)
	}
	if to > ss.nextChunk() {
		s.mu.Unlock()
		return fmt.Errorf("segstore: sensor %q chunk %d not yet archived", sensor, to-1)
	}
	var refs []segRef
	var entries []*segCacheEntry
	for c := from; c < to; {
		ref, err := resolveRef(sensor, ss, c)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		refs = append(refs, ref)
		// Warm segments are grabbed under the same acquisition that
		// resolved them: a fully cached range costs one lock round trip.
		entries = append(entries, s.cache.get(ref.key))
		c = ref.lastChunk + 1
	}
	s.mu.Unlock()

	errs := make([]error, len(refs))
	var miss []int
	for i, e := range entries {
		if e == nil {
			miss = append(miss, i)
		}
	}
	workers := s.opts.FetchWorkers
	if workers <= 0 {
		workers = DefaultFetchWorkers
	}
	if workers > len(miss) {
		workers = len(miss)
	}
	if workers <= 1 {
		for _, i := range miss {
			entries[i], errs[i] = s.fetchSegment(refs[i])
		}
	} else {
		idx := make(chan int, len(miss))
		for _, i := range miss {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					entries[i], errs[i] = s.fetchSegment(refs[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return s.reclassify(sensor, refs[i].firstChunk, err)
		}
	}

	ri := 0
	for c := from; c < to; c++ {
		for c > refs[ri].lastChunk {
			ri++
		}
		e := entries[ri]
		i := c - e.firstChunk
		if i < 0 || i >= len(e.rows) {
			return fmt.Errorf("segstore: sensor %q chunk %d missing from its segment", sensor, c)
		}
		if err := fn(c, e.rows[i], e.bounds[i]); err != nil {
			return err
		}
	}
	return nil
}

// scanSealed loads one sealed segment from disk, verifying every checksum.
func (s *Store) scanSealed(sm segMeta) (segScan, error) {
	path := filepath.Join(s.dir, filepath.FromSlash(sm.File))
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("segstore: opening sealed segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return segScan{}, err
	}
	scan, err := scanSegment(f, fi.Size())
	if err != nil {
		return segScan{}, fmt.Errorf("segstore: sealed segment %s: %w", sm.File, err)
	}
	if got := len(scan.Recs); got != sm.LastChunk-sm.FirstChunk+1 {
		return segScan{}, fmt.Errorf("segstore: sealed segment %s holds %d whole records, manifest says %d",
			sm.File, got, sm.LastChunk-sm.FirstChunk+1)
	}
	return scan, nil
}

// decodeScan runs the cold decode of one scanned segment and packages it
// as a cache entry.
func decodeScan(cfg core.Config, scan segScan) (*segCacheEntry, error) {
	rows, err := decodeSegmentChunks(cfg, scan)
	if err != nil {
		return nil, err
	}
	bounds := make([]float64, len(scan.Recs))
	for i, r := range scan.Recs {
		bounds[i] = r.Bound
	}
	return &segCacheEntry{firstChunk: scan.Header.FirstChunk, rows: rows, bounds: bounds}, nil
}

// ReplayFrom streams the archived raw frames of one sensor with chunk
// index >= from, in order, to fn. It is the recovery tail replay: the
// station calls it with the chunk count its checkpoint covers and feeds
// each frame back through its receive path. Frames are read outside the
// store lock, so fn may re-enter the station.
func (s *Store) ReplayFrom(sensor string, from int, fn func(chunk int, frame []byte) error) error {
	s.mu.Lock()
	ss := s.sensors[sensor]
	if ss == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSensor, sensor)
	}
	if from < ss.purged {
		s.mu.Unlock()
		return fmt.Errorf("%w: sensor %q replay from %d (archive starts at %d)",
			ErrPurged, sensor, from, ss.purged)
	}
	sealed := make([]segMeta, 0, len(ss.sealed))
	for _, sm := range ss.sealed {
		if sm.LastChunk >= from {
			sealed = append(sealed, sm)
		}
	}
	var activeFirst int
	var activeFrames [][]byte
	if a := ss.active; a != nil {
		activeFirst = a.header.FirstChunk
		activeFrames = a.frames
	}
	s.mu.Unlock()

	for _, sm := range sealed {
		scan, err := s.scanSealed(sm)
		if err != nil {
			return err
		}
		for i, frame := range scan.Frames {
			chunk := scan.Header.FirstChunk + i
			if chunk < from {
				continue
			}
			if err := fn(chunk, frame); err != nil {
				return err
			}
		}
	}
	for i, frame := range activeFrames {
		chunk := activeFirst + i
		if chunk < from {
			continue
		}
		if err := fn(chunk, frame); err != nil {
			return err
		}
	}
	return nil
}
