package segstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sbr/internal/timeseries"
)

// The chaos suite simulates kill -9 at the storage layer: a crash leaves
// the data directory in whatever state the kernel had durably written, so
// each scenario is staged by mutating a real store's files the way a torn
// power-off would — truncated appends, a footer without a manifest entry,
// a manifest that forgot a file that still exists — and recovery must
// yield byte-identical chunk reads for everything that had been
// acknowledged durable.

// activeSegPath returns the one segment file of the sensor that recovery
// would treat as active (the store under test keeps everything in one
// unsealed segment).
func activeSegPath(t testing.TB, dir, sensor string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "segments", sensor, "*"+segExt))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files for %s: %v", sensor, err)
	}
	return matches[len(matches)-1]
}

// TestChaosSegstoreTornAppendSweep crashes the writer at every byte offset
// inside the record region of an unsealed segment: reopening must recover
// exactly the records whose final byte made it to disk, serve them
// byte-identically, and accept the next append at the recovered position.
func TestChaosSegstoreTornAppendSweep(t *testing.T) {
	cfg := testConfig()
	base := t.TempDir()
	s, err := Open(Options{Dir: base, Config: cfg, SegmentChunks: 100})
	if err != nil {
		t.Fatal(err)
	}
	frames := makeFrames(t, cfg, 6, 16)
	rows, bounds := feedStore(t, s, cfg, "node", frames, 0)
	// Abandon s without Close: the crash. Per-append fsync means the file
	// content is exactly what a real kill -9 would leave at full length.
	path := activeSegPath(t, base, "node")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, rediscovered by a clean scan.
	f, _ := os.Open(path)
	scan, err := scanSegment(f, int64(len(full)))
	f.Close()
	if err != nil || len(scan.Recs) != 6 {
		t.Fatalf("staging scan: %d recs, %v", len(scan.Recs), err)
	}

	step := 97 // prime stride keeps the sweep dense but affordable
	for cut := int(scan.Recs[0].Offset); cut < len(full); cut += step {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "segments", "node"), 0o755); err != nil {
			t.Fatal(err)
		}
		err := os.WriteFile(filepath.Join(dir, "segments", "node", filepath.Base(path)),
			full[:cut], 0o644)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 100})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		// Exactly the whole records before the cut survive.
		want := 0
		for _, r := range scan.Recs[1:] {
			if int(r.Offset) <= cut {
				want++
			}
		}
		if int64(cut) >= scan.Good {
			want = len(scan.Recs)
		}
		_, next, err := re.Bounds("node")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if next != want {
			t.Fatalf("cut %d recovered %d records, want %d", cut, next, want)
		}
		checkAll(t, re, "node", rows[:want], bounds[:want], 0)
		re.Close()
	}
}

// TestChaosSegstoreCrashMidSeal covers the two halves of a seal that can
// be torn apart: (a) the footer landed but the manifest rename did not —
// reopening must finish the seal; (b) the footer itself is torn — the
// segment must come back as active with all records intact.
func TestChaosSegstoreCrashMidSeal(t *testing.T) {
	cfg := testConfig()
	stage := func(t *testing.T) (dir string, rows [][]timeseries.Series, bounds []float64) {
		t.Helper()
		dir = t.TempDir()
		s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 100})
		if err != nil {
			t.Fatal(err)
		}
		frames := makeFrames(t, cfg, 5, 16)
		rows, bounds = feedStore(t, s, cfg, "node", frames, 0)
		if err := s.Close(); err != nil { // seals + writes manifest
			t.Fatal(err)
		}
		return dir, rows, bounds
	}

	t.Run("footer-durable-manifest-lost", func(t *testing.T) {
		dir, rows, bounds := stage(t)
		// Roll the manifest back to the pre-seal state: sealed on disk,
		// unknown to the index — exactly a crash between fsync and rename.
		if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if st := re.StoreStats(); st.SealedSegments != 1 {
			t.Errorf("seal not finished at reopen: %+v", st)
		}
		// The reconstructed manifest is durable again.
		if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
			t.Errorf("manifest not rewritten: %v", err)
		}
		checkAll(t, re, "node", rows, bounds, 0)
	})

	t.Run("footer-torn", func(t *testing.T) {
		dir, rows, bounds := stage(t)
		if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
			t.Fatal(err)
		}
		path := activeSegPath(t, dir, "node")
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Cut inside the footer: the trailer is 12 bytes, the footer block
		// larger, so dropping 20 bytes always tears the footer, never a record.
		if err := os.WriteFile(path, full[:len(full)-20], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		st := re.StoreStats()
		if st.SealedSegments != 0 || st.Segments != 1 {
			t.Errorf("torn footer: stats %+v, want 1 active segment", st)
		}
		_, next, err := re.Bounds("node")
		if err != nil || next != len(rows) {
			t.Fatalf("torn footer lost records: next %d (%v), want %d", next, err, len(rows))
		}
		checkAll(t, re, "node", rows, bounds, 0)
	})
}

// TestChaosSegstoreCrashMidCompaction stages the compaction crash window:
// the manifest already forgot a purged segment but the file deletion never
// happened. Reopening must sweep the leftover and serve the surviving
// range; the purged range must answer ErrPurged.
func TestChaosSegstoreCrashMidCompaction(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames := makeFrames(t, cfg, 6, 16)
	rows, bounds := feedStore(t, s, cfg, "node", frames, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-edit the manifest the way EnforceRetention's crash window leaves
	// it: first sealed segment forgotten, watermark advanced, file still on
	// disk.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	sm := m.Sensors["node"]
	leftover := sm.Segments[0].File
	sm.PurgedThrough = sm.Segments[0].LastChunk + 1
	sm.Segments = sm.Segments[1:]
	raw, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(leftover))); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("compaction leftover %s not swept at reopen (stat: %v)", leftover, err)
	}
	if _, _, err := re.ChunkRows("node", 0); !errors.Is(err, ErrPurged) {
		t.Errorf("purged chunk read = %v, want ErrPurged", err)
	}
	checkAll(t, re, "node", rows, bounds, 2)
}
