package segstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

func testConfig() core.Config {
	return core.Config{TotalBand: 8, MBase: 8, Metric: metrics.SSE}
}

// makeFrames returns n deterministic wire frames for one sensor stream.
func makeFrames(t testing.TB, cfg core.Config, n, batchLen int) [][]byte {
	t.Helper()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 0, n)
	for b := 0; b < n; b++ {
		row := make(timeseries.Series, batchLen)
		for i := range row {
			row[i] = 2 * math.Sin(float64(b*batchLen+i)/5)
		}
		tr, err := comp.Encode([]timeseries.Series{row})
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// feedStore mirrors the station's archiving loop: decode each frame with a
// live replica, snapshot the pre-decode state, append. It returns the
// decoded rows and bounds per chunk — the reference for readback checks.
func feedStore(t testing.TB, s *Store, cfg core.Config, sensor string, frames [][]byte, from int) ([][]timeseries.Series, []float64) {
	t.Helper()
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var allRows [][]timeseries.Series
	var bounds []float64
	for i, frame := range frames {
		tr, err := wire.DecodeBytes(frame)
		if err != nil {
			t.Fatal(err)
		}
		pre := dec.State()
		rows, err := dec.Decode(tr)
		if err != nil {
			t.Fatal(err)
		}
		if i >= from {
			err = s.Append(sensor, i, rows, tr.ErrBound, frame,
				func() core.DecoderState { return pre })
			if err != nil {
				t.Fatalf("append chunk %d: %v", i, err)
			}
		}
		allRows = append(allRows, rows)
		bounds = append(bounds, tr.ErrBound)
	}
	return allRows, bounds
}

func sameRows(a, b []timeseries.Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// checkAll verifies every archived chunk reads back byte-identical to the
// live decode.
func checkAll(t testing.TB, s *Store, sensor string, rows [][]timeseries.Series, bounds []float64, from int) {
	t.Helper()
	for c := from; c < len(rows); c++ {
		got, bound, err := s.ChunkRows(sensor, c)
		if err != nil {
			t.Fatalf("ChunkRows(%d): %v", c, err)
		}
		if !sameRows(got, rows[c]) {
			t.Fatalf("chunk %d read back differs from live decode", c)
		}
		if bound != bounds[c] {
			t.Fatalf("chunk %d bound %v, want %v", c, bound, bounds[c])
		}
	}
}

func TestAppendSealReadback(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := makeFrames(t, cfg, 10, 16)
	rows, bounds := feedStore(t, s, cfg, "node", frames, 0)

	st := s.StoreStats()
	if st.SealedSegments != 2 || st.Segments != 3 {
		t.Errorf("stats %+v, want 2 sealed of 3 segments", st)
	}
	if st.Appends != 10 {
		t.Errorf("appends = %d, want 10", st.Appends)
	}
	oldest, next, err := s.Bounds("node")
	if err != nil || oldest != 0 || next != 10 {
		t.Errorf("Bounds = (%d,%d,%v), want (0,10,nil)", oldest, next, err)
	}
	checkAll(t, s, "node", rows, bounds, 0)

	// Out-of-order appends are rejected: the archive is strictly sequential.
	if err := s.Append("node", 12, rows[9], bounds[9], frames[9], nil); err == nil {
		t.Error("out-of-order append accepted")
	}
}

func TestCloseSealsAndReopens(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := makeFrames(t, cfg, 7, 16)
	rows, bounds := feedStore(t, s, cfg, "node", frames[:6], 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	st := again.StoreStats()
	if st.SealedSegments != 2 || st.Segments != 2 {
		t.Errorf("reopened stats %+v, want 2 sealed segments (graceful close seals the active one)", st)
	}
	checkAll(t, again, "node", rows, bounds, 0)

	// The stream continues where it stopped.
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pre core.DecoderState
	var lastRows []timeseries.Series
	var lastBound float64
	for i, frame := range frames {
		tr, _ := wire.DecodeBytes(frame)
		pre = dec.State()
		r, err := dec.Decode(tr)
		if err != nil {
			t.Fatal(err)
		}
		if i == 6 {
			lastRows, lastBound = r, tr.ErrBound
		}
	}
	err = again.Append("node", 6, lastRows, lastBound, frames[6],
		func() core.DecoderState { return pre })
	if err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	got, _, err := again.ChunkRows("node", 6)
	if err != nil || !sameRows(got, lastRows) {
		t.Fatalf("chunk 6 after reopen: %v", err)
	}
}

func TestReplayFrom(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := makeFrames(t, cfg, 8, 16)
	feedStore(t, s, cfg, "node", frames, 0)

	for _, from := range []int{0, 2, 5, 7, 8} {
		var got [][]byte
		err := s.ReplayFrom("node", from, func(chunk int, frame []byte) error {
			if chunk != from+len(got) {
				t.Fatalf("replay from %d yielded chunk %d at position %d", from, chunk, len(got))
			}
			got = append(got, frame)
			return nil
		})
		if err != nil {
			t.Fatalf("ReplayFrom(%d): %v", from, err)
		}
		if len(got) != len(frames)-from {
			t.Fatalf("ReplayFrom(%d) yielded %d frames, want %d", from, len(got), len(frames)-from)
		}
		for i, frame := range got {
			if string(frame) != string(frames[from+i]) {
				t.Fatalf("replayed frame %d differs from the archived original", from+i)
			}
		}
	}
}

func TestCheckpointRoundtripAndPruning(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.LoadCheckpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store LoadCheckpoint = %v, want ErrNoCheckpoint", err)
	}
	for i := 1; i <= 3; i++ {
		ck := &Checkpoint{
			Unix: int64(1000 + i),
			Sensors: map[string]*SensorCheckpoint{
				"node": {Chunks: i * 10, N: 1, M: 16},
			},
		}
		if err := s.WriteCheckpoint(ck); err != nil {
			t.Fatal(err)
		}
	}
	files := s.checkpointFiles()
	if len(files) != checkpointKeep {
		t.Errorf("%d checkpoint files on disk, want %d", len(files), checkpointKeep)
	}
	ck, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sensors["node"].Chunks != 30 || ck.Unix != 1003 {
		t.Errorf("loaded checkpoint %+v, want the newest (chunks 30)", ck.Sensors["node"])
	}

	// Destroy the newest: loading falls back to the survivor.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(3)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err = s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sensors["node"].Chunks != 20 {
		t.Errorf("fallback checkpoint covers %d chunks, want 20", ck.Sensors["node"].Chunks)
	}
}

func TestRetentionByBytes(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 2,
		Retention: Retention{MaxBytes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := makeFrames(t, cfg, 8, 16)
	rows, bounds := feedStore(t, s, cfg, "node", frames, 0)

	// Without a checkpoint nothing is removable: tail replay still needs
	// every record.
	removed, err := s.EnforceRetention(time.Now())
	if err != nil || removed != 0 {
		t.Fatalf("retention before checkpoint removed %d (%v), want 0", removed, err)
	}

	// A checkpoint covering the first 6 chunks frees exactly the sealed
	// segments living entirely below it.
	err = s.WriteCheckpoint(&Checkpoint{Sensors: map[string]*SensorCheckpoint{
		"node": {Chunks: 6, N: 1, M: 16},
	}})
	if err != nil {
		t.Fatal(err)
	}
	removed, err = s.EnforceRetention(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 { // chunks 0-1, 2-3, 4-5
		t.Fatalf("retention removed %d segments, want 3", removed)
	}
	oldest, next, err := s.Bounds("node")
	if err != nil || oldest != 6 || next != 8 {
		t.Errorf("Bounds after retention = (%d,%d,%v), want (6,8,nil)", oldest, next, err)
	}
	if _, _, err := s.ChunkRows("node", 3); !errors.Is(err, ErrPurged) {
		t.Errorf("purged chunk read = %v, want ErrPurged", err)
	}
	checkAll(t, s, "node", rows, bounds, 6)
	if st := s.StoreStats(); st.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", st.Compactions)
	}

	// The purge watermark survives a restart.
	s.Close()
	again, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if _, _, err := again.ChunkRows("node", 0); !errors.Is(err, ErrPurged) {
		t.Errorf("purged chunk after reopen = %v, want ErrPurged", err)
	}
	checkAll(t, again, "node", rows, bounds, 6)
}

func TestRetentionByAge(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Config: cfg, SegmentChunks: 2,
		Retention: Retention{MaxAge: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := makeFrames(t, cfg, 4, 16)
	feedStore(t, s, cfg, "node", frames, 0)
	err = s.WriteCheckpoint(&Checkpoint{Sensors: map[string]*SensorCheckpoint{
		"node": {Chunks: 4, N: 1, M: 16},
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Now: nothing is older than an hour.
	removed, err := s.EnforceRetention(time.Now())
	if err != nil || removed != 0 {
		t.Fatalf("fresh segments removed: %d (%v)", removed, err)
	}
	// Two hours in the future every sealed segment has expired.
	removed, err = s.EnforceRetention(time.Now().Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("retention removed %d segments, want 2", removed)
	}
}
