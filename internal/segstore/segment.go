package segstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sbr/internal/core"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// On-disk segment layout. A segment file is a magic preamble followed by a
// sequence of CRC32C-framed blocks:
//
//	file   := magic₈ header-block record-block* [footer-block trailer₁₂]
//	block  := len₄ crc32c₄ payload            (little endian, crc over payload)
//	trailer:= footer-offset₈ "SGFT"
//
// The first payload byte tags the block kind ('H' header, 'R' record,
// 'F' footer). The header carries the sensor identity, the chunk shape and
// the decoder replica state at segment start, so a sealed segment is
// self-contained: a cold reader seeds a replica from the header and decodes
// the segment's records without touching any other part of the history.
// Records hold the wire-encoded SBR transmission verbatim (the compressed
// unit of record), its §4.5 error bound and a per-row summary. The footer
// is the segment's index — chunk range, time range and per-record byte
// offsets — reachable in one seek through the fixed-size trailer.
//
// Torn writes are detected by the framing: a crash mid-append leaves a
// block whose length field or checksum cannot be satisfied, and the scanner
// reports the last byte offset that ends a whole block so the store can
// truncate the tail and keep appending.

// segMagic opens every segment file.
var segMagic = [8]byte{'S', 'B', 'R', 'S', 'E', 'G', '1', 0}

// trailerMagic closes a sealed segment, preceded by the footer offset.
var trailerMagic = [4]byte{'S', 'G', 'F', 'T'}

// Block kind tags (first payload byte).
const (
	blockHeader = 'H'
	blockRecord = 'R'
	blockFooter = 'F'
)

// maxBlock bounds block payloads so a corrupt length field cannot drive an
// unbounded allocation.
const maxBlock = 1 << 28

// castagnoli is the CRC32C polynomial table shared by all block framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn reports a block that cannot be completed from the remaining
// bytes: a torn or corrupt tail, recoverable by truncation.
var errTorn = errors.New("segstore: torn or corrupt block")

// segHeader is the header block payload (JSON after the kind tag).
type segHeader struct {
	Sensor      string            `json:"sensor"`
	FirstChunk  int               `json:"first_chunk"`
	N           int               `json:"n"`
	M           int               `json:"m"`
	Decoder     core.DecoderState `json:"decoder"`
	CreatedUnix int64             `json:"created_unix"`
}

// rowSummary is the per-quantity digest stored with every record and in
// the footer index: enough to answer chunk-aligned aggregates without
// decoding (count is the header's M; bounds derive from the record bound).
type rowSummary struct {
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// recMeta is one record's footer-index entry. Offset addresses the record
// block inside the file.
type recMeta struct {
	Chunk  int          `json:"chunk"`
	Offset int64        `json:"offset"`
	Unix   int64        `json:"unix"`
	Bound  float64      `json:"bound"`
	Rows   []rowSummary `json:"rows"`
}

// segFooter is the footer block payload (JSON after the kind tag): the
// sealed segment's index.
type segFooter struct {
	FirstChunk int       `json:"first_chunk"`
	Records    int       `json:"records"`
	MinUnix    int64     `json:"min_unix"`
	MaxUnix    int64     `json:"max_unix"`
	Recs       []recMeta `json:"recs"`
}

// record is one archived transmission: the raw wire frame plus the
// metadata that rides in the record block.
type record struct {
	Chunk int
	Unix  int64
	Bound float64
	Rows  []rowSummary
	Frame []byte
}

// appendBlock frames payload and appends it to buf.
func appendBlock(buf []byte, payload []byte) []byte {
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, head[:]...)
	return append(buf, payload...)
}

// readBlock reads one framed block from r. It returns errTorn for any
// shape of incomplete or corrupt block, io.EOF only at a clean boundary.
func readBlock(r io.Reader, avail int64) ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(head[0:4])
	// A declared length past the end of the file is a torn or corrupt
	// header; reject it before allocating anything.
	if n > maxBlock || int64(n) > avail-8 {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(head[4:8]) {
		return nil, errTorn
	}
	return payload, nil
}

// encodeHeaderBlock frames a header block.
func encodeHeaderBlock(h segHeader) ([]byte, error) {
	body, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("segstore: encoding segment header: %w", err)
	}
	return appendBlock(nil, append([]byte{blockHeader}, body...)), nil
}

// encodeRecordBlock frames a record block.
func encodeRecordBlock(rec record) []byte {
	payload := make([]byte, 0, 64+len(rec.Frame))
	payload = append(payload, blockRecord)
	payload = binary.AppendUvarint(payload, uint64(rec.Chunk))
	payload = binary.AppendVarint(payload, rec.Unix)
	payload = appendFloat(payload, rec.Bound)
	payload = binary.AppendUvarint(payload, uint64(len(rec.Rows)))
	for _, rs := range rec.Rows {
		payload = appendFloat(payload, rs.Sum)
		payload = appendFloat(payload, rs.Min)
		payload = appendFloat(payload, rs.Max)
	}
	payload = binary.AppendUvarint(payload, uint64(len(rec.Frame)))
	payload = append(payload, rec.Frame...)
	return appendBlock(nil, payload)
}

// encodeFooterBlock frames a footer block plus the trailer; footerOff is
// the file offset the footer block will land at.
func encodeFooterBlock(ft segFooter, footerOff int64) ([]byte, error) {
	body, err := json.Marshal(ft)
	if err != nil {
		return nil, fmt.Errorf("segstore: encoding segment footer: %w", err)
	}
	out := appendBlock(nil, append([]byte{blockFooter}, body...))
	var trailer [12]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(footerOff))
	copy(trailer[8:12], trailerMagic[:])
	return append(out, trailer[:]...), nil
}

func appendFloat(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

// decodeRecord parses a record block payload (after the kind tag has been
// verified by the caller).
func decodeRecord(payload []byte) (record, error) {
	r := bytes.NewReader(payload[1:])
	var rec record
	chunk, err := binary.ReadUvarint(r)
	if err != nil {
		return rec, fmt.Errorf("segstore: record chunk: %w", err)
	}
	unix, err := binary.ReadVarint(r)
	if err != nil {
		return rec, fmt.Errorf("segstore: record time: %w", err)
	}
	bound, err := readFloat(r)
	if err != nil {
		return rec, fmt.Errorf("segstore: record bound: %w", err)
	}
	nrows, err := binary.ReadUvarint(r)
	if err != nil {
		return rec, fmt.Errorf("segstore: record row count: %w", err)
	}
	if nrows > maxBlock/24 {
		return rec, fmt.Errorf("segstore: implausible record row count %d", nrows)
	}
	rows := make([]rowSummary, nrows)
	for i := range rows {
		if rows[i].Sum, err = readFloat(r); err != nil {
			return rec, fmt.Errorf("segstore: record summary: %w", err)
		}
		if rows[i].Min, err = readFloat(r); err != nil {
			return rec, fmt.Errorf("segstore: record summary: %w", err)
		}
		if rows[i].Max, err = readFloat(r); err != nil {
			return rec, fmt.Errorf("segstore: record summary: %w", err)
		}
	}
	frameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return rec, fmt.Errorf("segstore: record frame length: %w", err)
	}
	if frameLen != uint64(r.Len()) {
		return rec, fmt.Errorf("segstore: record frame length %d, %d bytes remain", frameLen, r.Len())
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(r, frame); err != nil {
		return rec, fmt.Errorf("segstore: record frame: %w", err)
	}
	rec.Chunk = int(chunk)
	rec.Unix = unix
	rec.Bound = bound
	rec.Rows = rows
	rec.Frame = frame
	return rec, nil
}

func readFloat(r *bytes.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// segScan is the result of scanning a segment file front to back.
type segScan struct {
	Header segHeader
	Recs   []recMeta // record index rebuilt from the records themselves
	Frames [][]byte  // raw wire frames, in record order
	Footer *segFooter
	// Good is the offset just past the last whole block (including a
	// footer); a file longer than Good carries a torn tail.
	Good int64
	Size int64
}

// scanSegment reads a segment file sequentially, validating every block
// checksum, and reports everything recoverable plus the torn-tail cut
// point. It never fails on torn or corrupt tails — only on files whose
// preamble or header block is unusable (err != nil and Header unset).
func scanSegment(r io.Reader, size int64) (segScan, error) {
	scan := segScan{Size: size}
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != segMagic {
		return scan, fmt.Errorf("segstore: bad segment magic")
	}
	off := int64(len(segMagic))
	payload, err := readBlock(br, size-off)
	if err != nil || len(payload) == 0 || payload[0] != blockHeader {
		return scan, fmt.Errorf("segstore: unreadable segment header")
	}
	if err := json.Unmarshal(payload[1:], &scan.Header); err != nil {
		return scan, fmt.Errorf("segstore: decoding segment header: %w", err)
	}
	if scan.Header.N <= 0 || scan.Header.M <= 0 {
		return scan, fmt.Errorf("segstore: segment header shape %dx%d", scan.Header.N, scan.Header.M)
	}
	off += int64(8 + len(payload))
	scan.Good = off
	for {
		payload, err := readBlock(br, size-off)
		if err != nil {
			// io.EOF is a clean end (unsealed segment); anything else is a
			// torn tail cut back to Good.
			return scan, nil
		}
		blockLen := int64(8 + len(payload))
		if len(payload) == 0 {
			return scan, nil
		}
		switch payload[0] {
		case blockRecord:
			rec, derr := decodeRecord(payload)
			if derr != nil {
				return scan, nil
			}
			want := scan.Header.FirstChunk + len(scan.Recs)
			if rec.Chunk != want || len(rec.Rows) != scan.Header.N {
				// A record out of sequence is indistinguishable from
				// corruption that happened to keep a valid CRC.
				return scan, nil
			}
			scan.Recs = append(scan.Recs, recMeta{
				Chunk: rec.Chunk, Offset: off, Unix: rec.Unix,
				Bound: rec.Bound, Rows: rec.Rows,
			})
			scan.Frames = append(scan.Frames, rec.Frame)
			off += blockLen
			scan.Good = off
		case blockFooter:
			var ft segFooter
			if json.Unmarshal(payload[1:], &ft) != nil {
				return scan, nil
			}
			if ft.FirstChunk != scan.Header.FirstChunk || ft.Records != len(scan.Recs) {
				return scan, nil
			}
			// The footer only counts with its trailer intact: a tail torn
			// inside the trailer means the seal never became durable, so the
			// footer bytes fall with the tear and the segment stays active.
			var tr [12]byte
			if _, err := io.ReadFull(br, tr[:]); err != nil {
				return scan, nil
			}
			if binary.LittleEndian.Uint64(tr[0:8]) != uint64(off) ||
				!bytes.Equal(tr[8:12], trailerMagic[:]) {
				return scan, nil
			}
			scan.Footer = &ft
			off += blockLen + 12 // block + trailer
			scan.Good = off
			return scan, nil
		default:
			return scan, nil
		}
	}
}

// decodeSegmentChunks replays a scanned segment's records through a cold
// decoder seeded from the header state, returning the reconstructed rows
// of every record in order. The result is byte-identical to what the live
// station computed when it first received the frames, because the decode
// pipeline is deterministic and the header snapshot reproduces the replica
// pool exactly as it stood at segment start.
func decodeSegmentChunks(cfg core.Config, scan segScan) ([][]timeseries.Series, error) {
	dec, err := core.NewDecoderAt(cfg, scan.Header.Decoder)
	if err != nil {
		return nil, err
	}
	out := make([][]timeseries.Series, 0, len(scan.Frames))
	for i, frame := range scan.Frames {
		t, err := wire.DecodeBytes(frame)
		if err != nil {
			return nil, fmt.Errorf("segstore: chunk %d: %w", scan.Header.FirstChunk+i, err)
		}
		// Mirror the station's reboot rule: a zero sequence after any prior
		// history means the sensor restarted with an empty base signal.
		if t.Seq == 0 && scan.Header.FirstChunk+i > 0 {
			if dec, err = core.NewDecoder(cfg); err != nil {
				return nil, err
			}
		}
		rows, err := dec.Decode(t)
		if err != nil {
			return nil, fmt.Errorf("segstore: chunk %d: %w", scan.Header.FirstChunk+i, err)
		}
		out = append(out, rows)
	}
	return out, nil
}
