package segstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sbr/internal/timeseries"
)

// openReadStore archives n chunks of one sensor into a fresh store and
// returns it with the reference rows and per-chunk bounds.
func openReadStore(t testing.TB, segChunks, cacheSegs, n int) (*Store, [][]timeseries.Series, []float64) {
	t.Helper()
	cfg := testConfig()
	s, err := Open(Options{Dir: t.TempDir(), Config: cfg, SegmentChunks: segChunks, CacheSegments: cacheSegs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	rows, bounds := feedStore(t, s, cfg, "node", makeFrames(t, cfg, n, 16), 0)
	return s, rows, bounds
}

// TestChunkRangeRowsOrdered verifies the parallel range fan-out: a read
// spanning several sealed segments plus the active one streams every
// chunk in order, byte-identical to the live decode, for assorted
// sub-ranges and worker counts.
func TestChunkRangeRowsOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s, rows, bounds := openReadStore(t, 4, 2, 18) // 4 sealed segments + active
			s.opts.FetchWorkers = workers
			for _, span := range [][2]int{{0, 18}, {3, 13}, {4, 8}, {7, 18}, {17, 18}, {5, 5}} {
				from, to := span[0], span[1]
				next := from
				err := s.ChunkRangeRows("node", from, to, func(chunk int, got []timeseries.Series, bound float64) error {
					if chunk != next {
						t.Fatalf("range [%d,%d): got chunk %d, want %d", from, to, chunk, next)
					}
					if !sameRows(got, rows[chunk]) {
						t.Fatalf("range [%d,%d): chunk %d rows differ from live decode", from, to, chunk)
					}
					if bound != bounds[chunk] {
						t.Fatalf("range [%d,%d): chunk %d bound %v, want %v", from, to, chunk, bound, bounds[chunk])
					}
					next++
					return nil
				})
				if err != nil {
					t.Fatalf("range [%d,%d): %v", from, to, err)
				}
				if next != to {
					t.Fatalf("range [%d,%d): stopped at chunk %d", from, to, next)
				}
			}
		})
	}
}

// TestChunkRangeRowsCallbackError verifies a callback error stops the
// stream and surfaces unchanged.
func TestChunkRangeRowsCallbackError(t *testing.T) {
	s, _, _ := openReadStore(t, 4, 2, 12)
	boom := fmt.Errorf("boom")
	calls := 0
	err := s.ChunkRangeRows("node", 0, 12, func(chunk int, _ []timeseries.Series, _ float64) error {
		calls++
		if chunk == 5 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 6 {
		t.Fatalf("callback ran %d times, want 6", calls)
	}
}

// TestSingleflightJoin pins the dedup contract deterministically: while a
// decode of a segment is in flight, a second reader of the same segment
// joins it — blocking until the leader publishes — instead of decoding
// again, and the hit/wait counters record the join.
func TestSingleflightJoin(t *testing.T) {
	s, rows, _ := openReadStore(t, 4, 2, 12)

	ref, err := s.resolveChunk("node", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a flight for chunk 1's segment, as if a leader were mid-decode.
	f := &flight{done: make(chan struct{})}
	s.mu.Lock()
	s.flights[ref.key] = f
	s.mu.Unlock()

	got := make(chan error, 1)
	go func() {
		r, _, err := s.ChunkRows("node", 1)
		if err == nil && !sameRows(r, rows[1]) {
			err = fmt.Errorf("joined rows differ from live decode")
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("join returned before the leader published (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Leader finishes: decode for real, publish, release joiners.
	e, err := s.decodeRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	delete(s.flights, ref.key)
	s.mu.Unlock()
	f.e, f.err = e, nil
	close(f.done)

	if err := <-got; err != nil {
		t.Fatal(err)
	}
	st := s.StoreStats()
	if st.SingleflightHits != 1 || st.SingleflightWaits != 1 {
		t.Fatalf("singleflight hits=%d waits=%d, want 1/1", st.SingleflightHits, st.SingleflightWaits)
	}
}

// TestConcurrentColdReads hammers the lock-free fetch path: many readers
// over the same segments, raced against nothing but each other, must all
// see the live decode byte-identically (run with -race in CI).
func TestConcurrentColdReads(t *testing.T) {
	s, rows, _ := openReadStore(t, 4, 1, 16) // cache of 1: constant misses
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				c := (g*7 + i*3) % 16
				got, _, err := s.ChunkRows("node", c)
				if err != nil {
					t.Errorf("ChunkRows(%d): %v", c, err)
					return
				}
				if !sameRows(got, rows[c]) {
					t.Errorf("ChunkRows(%d) differs from live decode", c)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkSegCacheEviction proves O(1) LRU maintenance: steady-state
// put+get cost must stay flat as the cache capacity grows (the old
// order-slice scan was linear in capacity).
func BenchmarkSegCacheEviction(b *testing.B) {
	for _, capacity := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			c := newSegCache(capacity)
			e := &segCacheEntry{}
			// Fill to capacity so every put below evicts.
			for i := 0; i < capacity; i++ {
				c.put(cacheKey("s", i, 1), e)
			}
			keys := make([]string, capacity+b.N)
			for i := range keys {
				keys[i] = cacheKey("s", i, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.put(keys[capacity+i], e) // miss: insert + evict oldest
				c.get(keys[i+1])           // touch the oldest resident to churn the list
			}
		})
	}
}
