package segstore

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// EnforceRetention applies the configured age and byte budgets, removing
// the oldest sealed segments first. Three rules keep it safe:
//
//   - only a contiguous prefix of a sensor's sealed segments is ever
//     removed, so the surviving archive has no holes (PurgedThrough is a
//     single watermark);
//   - segments holding chunks at or beyond the latest checkpoint's
//     coverage are never removed — recovery's tail replay needs them;
//   - the manifest forgetting a segment is made durable before the file
//     is deleted, so a crash in between leaves only a sweepable leftover.
//
// It returns the number of segments removed.
func (s *Store) EnforceRetention(now time.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("segstore: store is closed")
	}
	r := s.opts.Retention
	if r.MaxAge <= 0 && r.MaxBytes <= 0 {
		return 0, nil
	}

	drop := make(map[string]int) // sensor → sealed-prefix length to remove

	// Age: expire sealed prefixes whose newest record is out of window.
	if r.MaxAge > 0 {
		cutoff := now.Add(-r.MaxAge).Unix()
		for id, ss := range s.sensors {
			n := 0
			for _, sm := range ss.sealed {
				if sm.MaxUnix >= cutoff || !s.removableLocked(id, sm) {
					break
				}
				n++
			}
			drop[id] = n
		}
	}

	// Bytes: while over budget, drop the globally oldest still-removable
	// prefix head across sensors.
	if r.MaxBytes > 0 {
		total := int64(0)
		for _, ss := range s.sensors {
			for _, sm := range ss.sealed {
				total += sm.Bytes
			}
			if ss.active != nil {
				total += ss.active.size
			}
		}
		for id := range s.sensors {
			for _, sm := range s.sensors[id].sealed[:drop[id]] {
				total -= sm.Bytes
			}
		}
		for total > r.MaxBytes {
			oldest := ""
			var oldestUnix int64
			for id, ss := range s.sensors {
				n := drop[id]
				if n >= len(ss.sealed) {
					continue
				}
				sm := ss.sealed[n]
				if !s.removableLocked(id, sm) {
					continue
				}
				if oldest == "" || sm.MaxUnix < oldestUnix {
					oldest, oldestUnix = id, sm.MaxUnix
				}
			}
			if oldest == "" {
				break // nothing left that is safe to remove
			}
			total -= s.sensors[oldest].sealed[drop[oldest]].Bytes
			drop[oldest]++
		}
	}

	var victims []segMeta
	for id, n := range drop {
		if n == 0 {
			continue
		}
		ss := s.sensors[id]
		victims = append(victims, ss.sealed[:n]...)
		ss.purged = ss.sealed[n-1].LastChunk + 1
		ss.sealed = append([]segMeta(nil), ss.sealed[n:]...)
		s.cache.dropSensor(id)
	}
	if len(victims) == 0 {
		return 0, nil
	}
	// Durable forget first, then delete; leftovers from a crash in between
	// are swept at the next Open.
	if err := s.writeManifest(); err != nil {
		return 0, err
	}
	for _, sm := range victims {
		if err := os.Remove(filepath.Join(s.dir, filepath.FromSlash(sm.File))); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("segstore: removing expired segment: %w", err)
		}
	}
	s.met.compactions.Inc()
	s.updateGauges()
	return len(victims), nil
}

// removableLocked reports whether retention may drop sm: it must hold
// nothing the latest checkpoint's tail replay still needs. A sensor with
// no checkpoint coverage keeps everything.
func (s *Store) removableLocked(sensor string, sm segMeta) bool {
	cover, ok := s.ckptCover[sensor]
	if !ok {
		return false
	}
	return sm.LastChunk < cover
}
