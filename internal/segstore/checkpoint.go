package segstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sbr/internal/core"
	"sbr/internal/query"
)

// SensorCheckpoint is one sensor's slice of a station checkpoint: the
// decoder replica state after the last covered chunk, the aggregate-index
// leaves, and the receive-path bookkeeping a restart must resume with.
type SensorCheckpoint struct {
	// Chunks is the coverage: the checkpoint reflects chunks [0, Chunks).
	// Recovery replays archived records from this index on.
	Chunks int `json:"chunks"`
	// N and M are the chunk shape (quantities × samples per chunk).
	N int `json:"n"`
	M int `json:"m"`
	// Decoder resumes the live replica (W, next seq, pool slots).
	Decoder core.DecoderState `json:"decoder"`
	// IndexLeaves[i] is quantity i's per-chunk summaries in chunk order;
	// the aggregate index is rebuilt from them without decoding anything.
	IndexLeaves [][]query.Summary `json:"index_leaves"`
	// Bounds is the per-chunk §4.5 error bound, aligned with chunk index.
	Bounds []float64 `json:"bounds"`
	// Receive-path counters and duplicate-detection state.
	Frames   int    `json:"frames"`
	Bytes    int    `json:"bytes"`
	Values   int    `json:"values"`
	Inserts  []int  `json:"inserts"`
	Restarts int    `json:"restarts"`
	NextSeq  int    `json:"next_seq"`
	SrcNonce uint64 `json:"src_nonce,omitempty"`
	ZeroSum  uint64 `json:"zero_sum,omitempty"`
}

// Checkpoint is a durable snapshot of station state. Loading one and
// replaying the archived tail (chunks >= each sensor's Chunks) reproduces
// the station exactly; without one, recovery falls back to replaying the
// whole archive.
type Checkpoint struct {
	Version int                          `json:"version"`
	Unix    int64                        `json:"unix"`
	Sensors map[string]*SensorCheckpoint `json:"sensors"`
}

const checkpointVersion = 1
const checkpointPrefix = "ckpt-"
const checkpointKeep = 2

// ErrNoCheckpoint reports that the store holds no loadable checkpoint.
var ErrNoCheckpoint = errors.New("segstore: no checkpoint")

func checkpointName(seq int64) string {
	return fmt.Sprintf("%s%016d.json", checkpointPrefix, seq)
}

// WriteCheckpoint durably installs ck as the newest checkpoint (atomic
// rename, like the manifest) and prunes all but the newest checkpointKeep
// files — the previous one survives as the fallback if the newest is
// destroyed mid-write by a crash.
func (s *Store) WriteCheckpoint(ck *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	ck.Version = checkpointVersion
	if ck.Unix == 0 {
		ck.Unix = time.Now().Unix()
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("segstore: encoding checkpoint: %w", err)
	}
	seq := s.ckptSeq + 1
	if err := atomicWrite(s.dir, checkpointName(seq), data, !s.opts.NoSync); err != nil {
		return err
	}
	s.ckptSeq = seq
	s.ckptUnix = ck.Unix
	s.ckptCover = make(map[string]int, len(ck.Sensors))
	for id, sc := range ck.Sensors {
		s.ckptCover[id] = sc.Chunks
	}
	s.pruneCheckpoints(seq)
	s.updateCheckpointAgeLocked()
	return nil
}

// pruneCheckpoints removes checkpoint files older than the newest
// checkpointKeep. Failures are ignored: a leftover file costs bytes, not
// correctness.
func (s *Store) pruneCheckpoints(newest int64) {
	for seq, name := range s.checkpointFiles() {
		if seq <= newest-checkpointKeep {
			os.Remove(filepath.Join(s.dir, name)) //nolint:errcheck
		}
	}
}

// checkpointFiles lists the on-disk checkpoints as seq → filename.
func (s *Store) checkpointFiles() map[int64]string {
	out := make(map[int64]string)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), ".json")
		seq, err := strconv.ParseInt(seqStr, 10, 64)
		if err != nil {
			continue
		}
		out[seq] = name
	}
	return out
}

// LoadCheckpoint returns the newest loadable checkpoint, falling back to
// older ones when the newest is unparsable (a crash mid-rename cannot
// produce that, but a corrupt disk can), or ErrNoCheckpoint.
func (s *Store) LoadCheckpoint() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, seq, err := s.loadLatestCheckpoint()
	if err != nil {
		return nil, err
	}
	if ck == nil {
		return nil, ErrNoCheckpoint
	}
	if seq > s.ckptSeq {
		s.ckptSeq = seq
		s.ckptUnix = ck.Unix
		s.ckptCover = make(map[string]int, len(ck.Sensors))
		for id, sc := range ck.Sensors {
			s.ckptCover[id] = sc.Chunks
		}
	}
	return ck, nil
}

// loadLatestCheckpoint scans checkpoint files newest-first and returns the
// first that parses. (nil, 0, nil) means none exist; unreadable files are
// skipped, not fatal. Caller holds s.mu.
func (s *Store) loadLatestCheckpoint() (*Checkpoint, int64, error) {
	files := s.checkpointFiles()
	seqs := make([]int64, 0, len(files))
	for seq := range files {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(s.dir, files[seq]))
		if err != nil {
			continue
		}
		var ck Checkpoint
		if err := json.Unmarshal(data, &ck); err != nil || ck.Version != checkpointVersion {
			continue
		}
		return &ck, seq, nil
	}
	return nil, 0, nil
}

// CheckpointCoverage reports the chunk count the latest checkpoint covers
// for one sensor (zero when none does).
func (s *Store) CheckpointCoverage(sensor string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptCover[sensor]
}
