// Package segstore is the base station's persistent archive: an
// append-only, crash-safe on-disk segment store whose unit of record is
// the wire-encoded SBR transmission — the compressed form the sensor
// actually shipped, exactly the deployment model of the paper's Section 3.2
// ("a separate file exists for each sensor") hardened for production.
//
// Records are CRC32C-framed blocks in per-sensor segment files. The active
// segment absorbs appends (fsynced by default, so an acknowledged frame is
// durable); once it holds SegmentChunks records it is sealed — a footer
// index (chunk range, time range, per-record byte offsets and per-row
// summaries) is written and the manifest is atomically replaced. Each
// segment header carries the decoder replica state at segment start, so a
// cold read decodes one segment in isolation: queries over history evicted
// from station memory load and decode only the segments whose index
// overlaps the requested range. Periodic station checkpoints (replica pool
// + query-index snapshot) land next to the manifest and bound recovery to
// checkpoint-load plus a tail replay of the records appended since.
// Background retention drops the oldest sealed segments by age or byte
// budget, never touching records newer than the last checkpoint.
//
// Crash safety relies on two invariants: every block is independently
// checksummed (a torn append is detected and truncated at reopen), and the
// manifest and checkpoints are only ever replaced by atomic rename after
// an fsync, so readers see either the old or the new index, never a
// partial one. Compaction deletes files only after the manifest that
// forgets them is durable; leftovers from a crash in between are swept at
// the next open.
package segstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sbr/internal/core"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/timeseries"
)

// ErrPurged reports a query for chunks that retention has dropped.
var ErrPurged = errors.New("segstore: chunk purged by retention")

// ErrUnknownSensor reports a query for a sensor the store has no data for.
var ErrUnknownSensor = errors.New("segstore: unknown sensor")

// DefaultSegmentChunks is the records-per-segment seal threshold when
// Options leaves it zero: big enough to amortise footer and manifest
// writes, small enough that a cold read decodes a bounded batch.
const DefaultSegmentChunks = 64

// DefaultCacheSegments bounds the decoded-segment cache when Options
// leaves it zero.
const DefaultCacheSegments = 4

// Retention bounds the archive. Zero values mean unlimited.
type Retention struct {
	// MaxAge drops sealed segments whose newest record is older than this.
	MaxAge time.Duration
	// MaxBytes drops the oldest sealed segments while the store exceeds
	// this byte budget.
	MaxBytes int64
}

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if needed).
	Dir string
	// Config must match the station's core configuration: cold reads seed
	// replica decoders from it.
	Config core.Config
	// SegmentChunks is the seal threshold in records (DefaultSegmentChunks
	// when zero).
	SegmentChunks int
	// NoSync skips every fsync — per-append, segment seal, manifest and
	// checkpoint installs. Throughput rises; a crash may lose acknowledged
	// frames. The default (false) is the durable mode the recovery
	// guarantees assume.
	NoSync bool
	// CacheSegments bounds the decoded-segment LRU (DefaultCacheSegments
	// when zero).
	CacheSegments int
	// FetchWorkers bounds the parallel segment decodes of one range read
	// (DefaultFetchWorkers when zero).
	FetchWorkers int
	// Retention bounds the archive by age and/or bytes.
	Retention Retention
}

// segMeta is one sealed segment's manifest entry.
type segMeta struct {
	File       string `json:"file"` // store-relative path
	FirstChunk int    `json:"first_chunk"`
	LastChunk  int    `json:"last_chunk"`
	Bytes      int64  `json:"bytes"`
	MinUnix    int64  `json:"min_unix"`
	MaxUnix    int64  `json:"max_unix"`
}

// sensorManifest is one sensor's slice of the manifest.
type sensorManifest struct {
	// PurgedThrough is the retention watermark: chunks [0, PurgedThrough)
	// are gone from the archive.
	PurgedThrough int       `json:"purged_through"`
	Segments      []segMeta `json:"segments"`
}

// manifest is the store's authoritative index of sealed segments, always
// replaced by atomic rename.
type manifest struct {
	Version int                        `json:"version"`
	Sensors map[string]*sensorManifest `json:"sensors"`
}

const manifestVersion = 1
const manifestName = "MANIFEST.json"
const segExt = ".seg"

// activeSeg is the per-sensor segment currently absorbing appends. Its
// raw frames are mirrored in memory (bounded by SegmentChunks) so tail
// replay and cold reads of the newest chunks need no extra file reads.
type activeSeg struct {
	f      *os.File
	path   string // absolute
	rel    string // store-relative (manifest form)
	header segHeader
	recs   []recMeta
	frames [][]byte
	size   int64
}

func (a *activeSeg) lastChunk() int { return a.header.FirstChunk + len(a.recs) - 1 }

// sensorSegs is the in-memory index of one sensor's archive.
type sensorSegs struct {
	purged int // chunks [0, purged) dropped by retention
	sealed []segMeta
	active *activeSeg
}

// nextChunk returns the chunk index the next append must carry.
func (ss *sensorSegs) nextChunk() int {
	if ss.active != nil {
		return ss.active.header.FirstChunk + len(ss.active.recs)
	}
	if n := len(ss.sealed); n > 0 {
		return ss.sealed[n-1].LastChunk + 1
	}
	return ss.purged
}

// oldestChunk returns the first chunk the archive still holds.
func (ss *sensorSegs) oldestChunk() int { return ss.purged }

// storeMetrics is the store telemetry; all fields are standalone obs
// metrics so Stats works uninstrumented, swapped for registered instances
// by Instrument.
type storeMetrics struct {
	segments      *obs.Gauge
	bytes         *obs.Gauge
	appends       *obs.Counter
	coldReads     *obs.Counter
	compactions   *obs.Counter
	ckptAge       *obs.Gauge
	sfHits        *obs.Counter
	sfWaits       *obs.Counter
	fetchParallel *obs.Gauge
}

func newStoreMetrics() storeMetrics {
	return storeMetrics{
		segments: &obs.Gauge{}, bytes: &obs.Gauge{},
		appends: &obs.Counter{}, coldReads: &obs.Counter{},
		compactions: &obs.Counter{}, ckptAge: &obs.Gauge{},
		sfHits: &obs.Counter{}, sfWaits: &obs.Counter{},
		fetchParallel: &obs.Gauge{},
	}
}

// Store is the persistent segment store. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	sensors   map[string]*sensorSegs
	ckptSeq   int64
	ckptUnix  int64
	ckptCover map[string]int // chunks covered by the latest checkpoint
	cache     *segCache
	flights   map[string]*flight // in-progress segment decodes, by cache key
	met       storeMetrics
	closed    bool
}

// Open opens (creating if needed) a segment store rooted at opts.Dir and
// recovers whatever a previous process — cleanly shut down or crashed —
// left behind: sealed segments are taken from the manifest, the active
// segment is rescanned with its torn tail truncated, a segment sealed but
// not yet recorded in the manifest finishes sealing, and compaction
// leftovers are swept.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("segstore: empty data directory")
	}
	if opts.SegmentChunks <= 0 {
		opts.SegmentChunks = DefaultSegmentChunks
	}
	if opts.CacheSegments <= 0 {
		opts.CacheSegments = DefaultCacheSegments
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, "segments"), 0o755); err != nil {
		return nil, fmt.Errorf("segstore: creating data dir: %w", err)
	}
	s := &Store{
		dir:       opts.Dir,
		opts:      opts,
		sensors:   make(map[string]*sensorSegs),
		ckptCover: make(map[string]int),
		cache:     newSegCache(opts.CacheSegments),
		flights:   make(map[string]*flight),
		met:       newStoreMetrics(),
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	if ck, seq, err := s.loadLatestCheckpoint(); err == nil && ck != nil {
		s.ckptSeq = seq
		s.ckptUnix = ck.Unix
		for id, sc := range ck.Sensors {
			s.ckptCover[id] = sc.Chunks
		}
	}
	if err := s.recoverSegments(); err != nil {
		return nil, err
	}
	s.updateGauges()
	return s, nil
}

// loadManifest reads the manifest (absent: empty store) and verifies the
// files it names are present.
func (s *Store) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("segstore: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("segstore: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("segstore: unsupported manifest version %d", m.Version)
	}
	for id, sm := range m.Sensors {
		ss := &sensorSegs{purged: sm.PurgedThrough, sealed: sm.Segments}
		sort.Slice(ss.sealed, func(i, j int) bool {
			return ss.sealed[i].FirstChunk < ss.sealed[j].FirstChunk
		})
		for _, sm := range ss.sealed {
			if _, err := os.Stat(filepath.Join(s.dir, sm.File)); err != nil {
				return fmt.Errorf("segstore: manifest names missing segment %s: %w", sm.File, err)
			}
		}
		s.sensors[id] = ss
	}
	return nil
}

// recoverSegments scans the segments tree for files the manifest does not
// know: per sensor, the one past the sealed range is the active segment
// (rescanned, torn tail truncated, or seal finished if it has a footer);
// anything else is a compaction leftover and is deleted.
func (s *Store) recoverSegments() error {
	root := filepath.Join(s.dir, "segments")
	dirs, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("segstore: reading segments dir: %w", err)
	}
	known := make(map[string]bool)
	for _, ss := range s.sensors {
		for _, sm := range ss.sealed {
			known[filepath.ToSlash(sm.File)] = true
		}
	}
	var sealedDirty bool
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, d.Name()))
		if err != nil {
			return fmt.Errorf("segstore: reading sensor dir: %w", err)
		}
		type cand struct {
			path string
			rel  string
			scan segScan
		}
		var cands []cand
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), segExt) {
				continue
			}
			rel := filepath.ToSlash(filepath.Join("segments", d.Name(), f.Name()))
			if known[rel] {
				continue
			}
			path := filepath.Join(root, d.Name(), f.Name())
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			fh, err := os.Open(path)
			if err != nil {
				return err
			}
			scan, serr := scanSegment(fh, fi.Size())
			fh.Close()
			if serr != nil {
				// Unusable preamble or header: the crash landed inside the
				// very first write of a fresh segment — nothing recoverable.
				if err := os.Remove(path); err != nil {
					return fmt.Errorf("segstore: removing unreadable segment: %w", err)
				}
				continue
			}
			cands = append(cands, cand{path: path, rel: rel, scan: scan})
		}
		if len(cands) == 0 {
			continue
		}
		// The true active segment starts past everything the manifest holds
		// for its sensor; everything else is a stale leftover.
		sort.Slice(cands, func(i, j int) bool {
			return cands[i].scan.Header.FirstChunk < cands[j].scan.Header.FirstChunk
		})
		for i, c := range cands {
			id := c.scan.Header.Sensor
			ss := s.sensors[id]
			if ss == nil {
				ss = &sensorSegs{}
				s.sensors[id] = ss
			}
			if i < len(cands)-1 || c.scan.Header.FirstChunk != ss.nextChunk() {
				if err := os.Remove(c.path); err != nil {
					return fmt.Errorf("segstore: sweeping stale segment: %w", err)
				}
				continue
			}
			if c.scan.Footer != nil {
				// Sealed on disk but the crash beat the manifest update:
				// finish the job.
				ss.sealed = append(ss.sealed, metaFromScan(c.rel, c.scan))
				sealedDirty = true
				continue
			}
			if c.scan.Good < c.scan.Size {
				if err := truncateTo(c.path, c.scan.Good); err != nil {
					return err
				}
			}
			fh, err := os.OpenFile(c.path, os.O_RDWR, 0)
			if err != nil {
				return fmt.Errorf("segstore: reopening active segment: %w", err)
			}
			if _, err := fh.Seek(c.scan.Good, 0); err != nil {
				fh.Close()
				return err
			}
			ss.active = &activeSeg{
				f: fh, path: c.path, rel: c.rel,
				header: c.scan.Header, recs: c.scan.Recs,
				frames: c.scan.Frames, size: c.scan.Good,
			}
		}
	}
	if sealedDirty {
		return s.writeManifest()
	}
	return nil
}

func metaFromScan(rel string, scan segScan) segMeta {
	sm := segMeta{
		File:       rel,
		FirstChunk: scan.Header.FirstChunk,
		LastChunk:  scan.Header.FirstChunk + len(scan.Recs) - 1,
		Bytes:      scan.Good,
	}
	for i, r := range scan.Recs {
		if i == 0 || r.Unix < sm.MinUnix {
			sm.MinUnix = r.Unix
		}
		if r.Unix > sm.MaxUnix {
			sm.MaxUnix = r.Unix
		}
	}
	return sm
}

func truncateTo(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("segstore: opening segment for truncation: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("segstore: truncating torn segment tail: %w", err)
	}
	return f.Sync()
}

// safeName maps a sensor ID to its directory name, sanitising separators
// the same way the station's raw-frame log store does.
func safeName(id string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		}
		return r
	}, id)
}

// NeedsSegment reports whether the next Append for sensor will open a
// fresh segment — the station's cue to snapshot the decoder replica
// *before* decoding the frame, because that pre-decode state becomes the
// new segment's header. The answer stays valid as long as the caller
// serialises its appends per sensor (the station's lock does).
func (s *Store) NeedsSegment(sensor string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sensors[sensor]
	return ss == nil || ss.active == nil
}

// Append archives one accepted transmission: chunk is the station's global
// chunk index for the sensor, rows the decoded quantities, bound the §4.5
// error bound, frame the raw wire bytes, and state a lazy snapshot of the
// decoder replica *before* this frame was decoded — evaluated only when
// the append opens a fresh segment, whose header it becomes.
func (s *Store) Append(sensor string, chunk int, rows []timeseries.Series, bound float64, frame []byte, state func() core.DecoderState) error {
	return s.AppendTraced(sensor, chunk, rows, bound, frame, state, nil)
}

// AppendTraced is Append recording the durability work — the per-record
// fsync and any segment seal — as children of sp (nil: identical to
// Append). The fsync child is the usual answer to "where did this
// frame's receive latency go".
func (s *Store) AppendTraced(sensor string, chunk int, rows []timeseries.Series, bound float64, frame []byte, state func() core.DecoderState, sp *trace.Span) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	ss := s.sensors[sensor]
	if ss == nil {
		ss = &sensorSegs{}
		s.sensors[sensor] = ss
	}
	if want := ss.nextChunk(); chunk != want {
		return fmt.Errorf("segstore: sensor %q chunk %d out of order (want %d)", sensor, chunk, want)
	}
	if ss.active == nil {
		if err := s.openSegment(sensor, ss, chunk, rows, state()); err != nil {
			return err
		}
	}
	a := ss.active
	now := time.Now().Unix()
	rec := record{Chunk: chunk, Unix: now, Bound: bound, Rows: summarizeRows(rows), Frame: frame}
	block := encodeRecordBlock(rec)
	if _, err := a.f.Write(block); err != nil {
		return fmt.Errorf("segstore: appending record: %w", err)
	}
	if !s.opts.NoSync {
		fsp := sp.Child("segstore.fsync")
		err := a.f.Sync()
		fsp.End()
		if err != nil {
			return fmt.Errorf("segstore: syncing record: %w", err)
		}
	}
	a.recs = append(a.recs, recMeta{
		Chunk: chunk, Offset: a.size, Unix: now, Bound: bound, Rows: rec.Rows,
	})
	a.frames = append(a.frames, append([]byte(nil), frame...))
	a.size += int64(len(block))
	s.met.appends.Inc()
	if len(a.recs) >= s.opts.SegmentChunks {
		ssp := sp.Child("segstore.seal")
		err := s.sealActive(ss)
		if err == nil {
			err = s.writeManifest()
		}
		ssp.End()
		if err != nil {
			return err
		}
	}
	s.updateGauges()
	return nil
}

// summarizeRows digests the decoded rows for the record and footer index.
func summarizeRows(rows []timeseries.Series) []rowSummary {
	out := make([]rowSummary, len(rows))
	for i, r := range rows {
		if len(r) == 0 {
			continue
		}
		rs := rowSummary{Sum: r[0], Min: r[0], Max: r[0]}
		for _, v := range r[1:] {
			rs.Sum += v
			if v < rs.Min {
				rs.Min = v
			}
			if v > rs.Max {
				rs.Max = v
			}
		}
		out[i] = rs
	}
	return out
}

// openSegment creates the sensor's next active segment, its header holding
// the decoder state as of firstChunk.
func (s *Store) openSegment(sensor string, ss *sensorSegs, firstChunk int, rows []timeseries.Series, state core.DecoderState) error {
	m := 0
	if len(rows) > 0 {
		m = len(rows[0])
	}
	h := segHeader{
		Sensor:      sensor,
		FirstChunk:  firstChunk,
		N:           len(rows),
		M:           m,
		Decoder:     state,
		CreatedUnix: time.Now().Unix(),
	}
	dir := filepath.Join(s.dir, "segments", safeName(sensor))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("segstore: creating sensor dir: %w", err)
	}
	name := fmt.Sprintf("%012d%s", firstChunk, segExt)
	path := filepath.Join(dir, name)
	rel := filepath.ToSlash(filepath.Join("segments", safeName(sensor), name))
	block, err := encodeHeaderBlock(h)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: creating segment: %w", err)
	}
	buf := append(append([]byte(nil), segMagic[:]...), block...)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("segstore: writing segment header: %w", err)
	}
	ss.active = &activeSeg{f: f, path: path, rel: rel, header: h, size: int64(len(buf))}
	return nil
}

// sealActive writes the footer index and trailer, fsyncs and closes the
// active segment, and moves it to the sealed list. The caller must hold
// s.mu and follow up with writeManifest.
func (s *Store) sealActive(ss *sensorSegs) error {
	a := ss.active
	if a == nil {
		return nil
	}
	if len(a.recs) == 0 {
		// Nothing durable in it: drop the empty shell instead of sealing.
		a.f.Close()
		ss.active = nil
		return os.Remove(a.path)
	}
	ft := segFooter{
		FirstChunk: a.header.FirstChunk,
		Records:    len(a.recs),
	}
	for i, r := range a.recs {
		if i == 0 || r.Unix < ft.MinUnix {
			ft.MinUnix = r.Unix
		}
		if r.Unix > ft.MaxUnix {
			ft.MaxUnix = r.Unix
		}
	}
	ft.Recs = a.recs
	block, err := encodeFooterBlock(ft, a.size)
	if err != nil {
		return err
	}
	if _, err := a.f.Write(block); err != nil {
		return fmt.Errorf("segstore: writing segment footer: %w", err)
	}
	if !s.opts.NoSync {
		if err := a.f.Sync(); err != nil {
			return fmt.Errorf("segstore: syncing sealed segment: %w", err)
		}
	}
	if err := a.f.Close(); err != nil {
		return fmt.Errorf("segstore: closing sealed segment: %w", err)
	}
	ss.sealed = append(ss.sealed, segMeta{
		File:       a.rel,
		FirstChunk: a.header.FirstChunk,
		LastChunk:  a.lastChunk(),
		Bytes:      a.size + int64(len(block)),
		MinUnix:    ft.MinUnix,
		MaxUnix:    ft.MaxUnix,
	})
	ss.active = nil
	return nil
}

// writeManifest atomically replaces the manifest with the current sealed
// index. The caller must hold s.mu.
func (s *Store) writeManifest() error {
	m := manifest{Version: manifestVersion, Sensors: make(map[string]*sensorManifest, len(s.sensors))}
	for id, ss := range s.sensors {
		m.Sensors[id] = &sensorManifest{PurgedThrough: ss.purged, Segments: ss.sealed}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("segstore: encoding manifest: %w", err)
	}
	return atomicWrite(s.dir, manifestName, data, !s.opts.NoSync)
}

// atomicWrite writes name under dir via tmp + fsync + rename + dir fsync,
// the crash-safe replacement idiom the manifest and checkpoints share.
// sync=false (a NoSync store) keeps the atomic rename but skips the
// fsyncs, matching the durability the rest of the store forfeits.
func atomicWrite(dir, name string, data []byte, sync bool) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: creating %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("segstore: writing %s: %w", name, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("segstore: syncing %s: %w", name, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segstore: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("segstore: installing %s: %w", name, err)
	}
	if sync {
		if d, err := os.Open(dir); err == nil {
			d.Sync() //nolint:errcheck — advisory on some filesystems
			d.Close()
		}
	}
	return nil
}

// Close seals every active segment (graceful shutdown: the footer index
// and manifest make the next boot cheap) and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var sealed bool
	for _, ss := range s.sensors {
		if ss.active == nil {
			continue
		}
		if err := s.sealActive(ss); err != nil {
			return err
		}
		sealed = true
	}
	if sealed {
		if err := s.writeManifest(); err != nil {
			return err
		}
	}
	s.updateGauges()
	return nil
}

// Sensors returns the IDs the store holds data for, sorted.
func (s *Store) Sensors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sensors))
	for id := range s.sensors {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Bounds reports the archived chunk range [oldest, next) of one sensor:
// oldest is the retention watermark, next the chunk the next append will
// carry.
func (s *Store) Bounds(sensor string) (oldest, next int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sensors[sensor]
	if ss == nil {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownSensor, sensor)
	}
	return ss.oldestChunk(), ss.nextChunk(), nil
}

// updateGauges refreshes the segment/byte gauges. Caller holds s.mu.
func (s *Store) updateGauges() {
	var segs int
	var bytes int64
	for _, ss := range s.sensors {
		segs += len(ss.sealed)
		for _, sm := range ss.sealed {
			bytes += sm.Bytes
		}
		if ss.active != nil {
			segs++
			bytes += ss.active.size
		}
	}
	s.met.segments.Set(float64(segs))
	s.met.bytes.Set(float64(bytes))
}

// Stats is a point-in-time summary of the store, served on /v1/stats.
type Stats struct {
	Sensors            int    `json:"sensors"`
	Segments           int    `json:"segments"`
	SealedSegments     int    `json:"sealed_segments"`
	Bytes              int64  `json:"bytes"`
	Appends            uint64 `json:"appends"`
	ColdReads          uint64 `json:"cold_reads"`
	Compactions        uint64 `json:"compactions"`
	SingleflightHits   uint64 `json:"singleflight_hits"`
	SingleflightWaits  uint64 `json:"singleflight_waits"`
	LastCheckpointUnix int64  `json:"last_checkpoint_unix"`
}

// StoreStats reports the current store statistics.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Sensors:            len(s.sensors),
		Appends:            s.met.appends.Value(),
		ColdReads:          s.met.coldReads.Value(),
		Compactions:        s.met.compactions.Value(),
		SingleflightHits:   s.met.sfHits.Value(),
		SingleflightWaits:  s.met.sfWaits.Value(),
		LastCheckpointUnix: s.ckptUnix,
	}
	for _, ss := range s.sensors {
		st.SealedSegments += len(ss.sealed)
		for _, sm := range ss.sealed {
			st.Bytes += sm.Bytes
		}
		if ss.active != nil {
			st.Segments++
			st.Bytes += ss.active.size
		}
	}
	st.Segments += st.SealedSegments
	return st
}

// Instrument registers the store's metrics on reg and re-points the
// internal counters at the registered instances. Call before traffic.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = storeMetrics{
		segments:      reg.Gauge("sbr_segstore_segments", "Segment files in the archive (sealed + active)."),
		bytes:         reg.Gauge("sbr_segstore_bytes", "Archive size in bytes (sealed + active segments)."),
		appends:       reg.Counter("sbr_segstore_appends_total", "Transmissions archived."),
		coldReads:     reg.Counter("sbr_segstore_cold_reads_total", "Segment loads serving queries beyond the in-memory window."),
		compactions:   reg.Counter("sbr_segstore_compactions_total", "Retention passes that removed at least one segment."),
		ckptAge:       reg.Gauge("sbr_segstore_checkpoint_age_seconds", "Seconds since the last station checkpoint (-1: none yet)."),
		sfHits:        reg.Counter("sbr_segstore_singleflight_hits_total", "Cold fetches served by joining an in-flight decode of the same segment."),
		sfWaits:       reg.Counter("sbr_segstore_singleflight_waits_total", "Singleflight joins that blocked waiting for the leading decode."),
		fetchParallel: reg.Gauge("sbr_segstore_cold_fetch_parallel", "Segment decodes currently in flight serving cold reads."),
	}
	s.updateGauges()
	s.updateCheckpointAgeLocked()
}

// UpdateCheckpointAge refreshes the checkpoint-age gauge; the daemon's
// report ticker calls it so the exported age moves between checkpoints.
func (s *Store) UpdateCheckpointAge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updateCheckpointAgeLocked()
}

func (s *Store) updateCheckpointAgeLocked() {
	if s.ckptUnix == 0 {
		s.met.ckptAge.Set(-1)
		return
	}
	age := time.Now().Unix() - s.ckptUnix
	if age < 0 {
		age = 0
	}
	s.met.ckptAge.Set(float64(age))
}
