// Weathermon is the paper's motivating deployment: a weather station
// records six physically coupled quantities, batches them, and ships
// SBR-compressed transmissions to a base station that keeps a queryable
// long-term history (Section 3.2, Figure 1). The example runs ten
// transmissions, persists the per-sensor log to disk, rebuilds the station
// from the log, and answers historical point/range/aggregate queries —
// including the strict-error-bound mode of Section 4.5.
package main

import (
	"fmt"
	"log"
	"os"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/station"
	"sbr/internal/wire"
)

func main() {
	ds := datagen.WeatherSized(42, 1024, 10)
	n := ds.N() * ds.FileLen
	cfg := core.Config{
		TotalBand: n / 10,
		MBase:     n / 8,
		Metric:    metrics.SSE,
	}

	comp, err := core.NewCompressor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := station.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	logDir, err := os.MkdirTemp("", "sbr-weathermon-logs")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)
	store, err := station.NewLogStore(logDir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	const sensorID = "uw-station"
	fmt.Printf("streaming %d transmissions of %d weather quantities × %d samples\n",
		ds.Files, ds.N(), ds.FileLen)
	for f := 0; f < ds.Files; f++ {
		t, err := comp.Encode(ds.File(f))
		if err != nil {
			log.Fatal(err)
		}
		frame, err := wire.Encode(t)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Append(sensorID, frame); err != nil {
			log.Fatal(err)
		}
		if err := st.ReceiveFrame(sensorID, frame); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tx %2d: %4d values, %d new base intervals, %5d wire bytes\n",
			f, t.Cost, t.Ins(), len(frame))
	}

	stats, err := st.SensorStats(sensorID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstation holds %d transmissions (%d bytes); base intervals per tx: %v\n",
		stats.Transmissions, stats.RawBytes, stats.BaseInserts)

	// Historical queries over the approximate log.
	day := 96 // samples per day at the 15-minute cadence
	for row, label := range ds.Labels {
		avg, err := st.Aggregate(sensorID, row, 0, day, station.AggAvg)
		if err != nil {
			log.Fatal(err)
		}
		maxv, err := st.Aggregate(sensorID, row, 0, day, station.AggMax)
		if err != nil {
			log.Fatal(err)
		}
		orig := ds.Rows[row][:day]
		fmt.Printf("  day-1 %-11s avg %8.2f (true %8.2f)  max %8.2f (true %8.2f)\n",
			label, avg, orig.Mean(), maxv, orig.Max())
	}

	// Reconstruction fidelity across the whole record.
	fmt.Println("\nfull-history reconstruction error per quantity:")
	for row, label := range ds.Labels {
		hist, err := st.History(sensorID, row)
		if err != nil {
			log.Fatal(err)
		}
		orig := ds.Rows[row][:len(hist)]
		fmt.Printf("  %-11s per-value MSE %10.5f  (signal variance %10.3f)\n",
			label, metrics.MeanSquared(orig, hist), orig.Variance())
	}

	// Rebuild the station purely from the on-disk log and spot-check.
	rebuilt, err := station.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store2, err := station.NewLogStore(logDir)
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	if err := store2.LoadSensorLog(rebuilt, sensorID); err != nil {
		log.Fatal(err)
	}
	a, _ := st.At(sensorID, 0, 5000)
	b, _ := rebuilt.At(sensorID, 0, 5000)
	fmt.Printf("\nlog replay check: sample 5000 of air-temp = %.4f (live) vs %.4f (replayed)\n", a, b)

	// The query layer: daily maxima via a windowed query, a plotting export,
	// and a threshold scan ("when did it freeze?") over the approximate log.
	pts, err := st.Run(station.Query{Sensor: sensorID, Row: 0, Step: day, Agg: station.AggMax})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaily max air temperature across the record (%d days):", len(pts))
	for i, p := range pts {
		if i%16 == 0 {
			fmt.Printf("\n  ")
		}
		fmt.Printf("%6.1f", p.Value)
	}
	fmt.Println()

	frosts, err := st.Exceedances(sensorID, 5, 0, 0, 78) // humidity >= 78 %
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saturated-air episodes (humidity ≥ 78%%): %d runs", len(frosts))
	if len(frosts) > 0 {
		longest := frosts[0]
		for _, r := range frosts {
			if r.End-r.Start > longest.End-longest.Start {
				longest = r
			}
		}
		fmt.Printf(", longest %d samples starting at %d (peak %.1f%%)",
			longest.End-longest.Start, longest.Start, longest.Peak)
	}
	fmt.Println()

	plot, err := st.Downsample(sensorID, 0, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("32-point plotting export of air-temp: min %.1f, max %.1f\n",
		plot.Min(), plot.Max())

	// Strict error bounds (Section 4.5): re-compress the first batch under
	// the max-abs metric and report the guaranteed bound.
	strict := cfg
	strict.Metric = metrics.MaxAbs
	comp2, err := core.NewCompressor(strict)
	if err != nil {
		log.Fatal(err)
	}
	t, err := comp2.Encode(ds.File(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrict-bound mode: the batch is guaranteed within ±%.3f of the truth\n", t.TotalErr)
}
