// Mixedstreams demonstrates SBR's robustness when cross-signal correlation
// is weak — the Section 5.1.2 scenario. It mixes phone-call counts, weather
// quantities and stock prices into one batch, runs SBR and every baseline
// at the same budget, and inspects how SBR adapts: how much bandwidth the
// base signal takes, and how many intervals fall back to plain linear
// regression when no base feature matches.
package main

import (
	"fmt"
	"log"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/dct"
	"sbr/internal/dft"
	"sbr/internal/histogram"
	"sbr/internal/interval"
	"sbr/internal/linreg"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wavelet"
)

func main() {
	ds := datagen.MixedSized(42, 1024, 10)
	n := ds.N() * ds.FileLen
	budget := n / 10
	cfg := core.Config{TotalBand: budget, MBase: n / 10, Metric: metrics.SSE}

	comp, err := core.NewCompressor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mixed batch: %v\n", ds.Labels)
	fmt.Printf("%d signals × %d samples, budget %d values (10%%)\n\n", ds.N(), ds.FileLen, budget)

	totals := map[string]float64{}
	var ramp, shifted, baseValues int
	for f := 0; f < ds.Files; f++ {
		batch := ds.File(f)
		y := timeseries.Concat(batch...)

		t, err := comp.Encode(batch)
		if err != nil {
			log.Fatal(err)
		}
		got, err := dec.Decode(t)
		if err != nil {
			log.Fatal(err)
		}
		totals["SBR"] += metrics.SumSquaredRelative(y, timeseries.Concat(got...), metrics.DefaultSanity)
		totals["Wavelets"] += relErr(batch, wavelet.ApproximateRows(batch, budget))
		totals["DCT"] += relErr(batch, dct.ApproximateRows(batch, budget))
		totals["DFT"] += relErr(batch, dft.ApproximateRows(batch, budget))
		totals["Histograms"] += relErr(batch, histogram.ApproximateRows(batch, budget))
		totals["LinReg"] += relErr(batch, linreg.Adaptive(batch, budget, metrics.SSE))

		baseValues += t.Ins() * (t.W + 1)
		for _, iv := range t.Intervals {
			if iv.Shift == interval.RampShift {
				ramp++
			} else {
				shifted++
			}
		}
	}

	fmt.Println("total sum squared relative error across 10 transmissions:")
	for _, m := range []string{"SBR", "Wavelets", "DCT", "DFT", "Histograms", "LinReg"} {
		marker := ""
		if m == "SBR" {
			marker = "  ← this library"
		}
		fmt.Printf("  %-12s %14.2f%s\n", m, totals[m], marker)
	}

	fmt.Printf("\nhow SBR adapted to the weak correlations:\n")
	fmt.Printf("  bandwidth spent on base-signal updates: %d of %d values (%.1f%%)\n",
		baseValues, budget*ds.Files, 100*float64(baseValues)/float64(budget*ds.Files))
	fmt.Printf("  interval mappings: %d onto the base signal, %d plain-regression fall-backs (%.1f%% ramp)\n",
		shifted, ramp, 100*float64(ramp)/float64(ramp+shifted))
	fmt.Println("\nthe fall-back is the Section 5.1.2 safety net: when no base feature")
	fmt.Println("matches an interval, SBR is never worse than piecewise linear regression.")
}

func relErr(orig, approx []timeseries.Series) float64 {
	return metrics.SumSquaredRelative(
		timeseries.Concat(orig...), timeseries.Concat(approx...), metrics.DefaultSanity)
}
