// Quickstart: compress one batch of correlated sensor measurements with
// SBR, ship it through the wire format, decode it at the "base station",
// and report the error — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

func main() {
	// Three correlated quantities, 512 samples each: a shared daily cycle
	// with per-quantity scale and offset — the structure SBR exploits.
	rng := rand.New(rand.NewSource(1))
	const m = 1024
	rows := make([]timeseries.Series, 4)
	for q := range rows {
		scale := 1 + float64(q)
		offset := 10 * float64(q)
		rows[q] = make(timeseries.Series, m)
		for i := range rows[q] {
			cycle := math.Sin(2*math.Pi*float64(i)/128) + 0.4*math.Sin(2*math.Pi*float64(i)/32)
			rows[q][i] = scale*10*cycle + offset + 0.2*rng.NormFloat64()
		}
	}
	n := len(rows) * m

	// The only two knobs the paper requires: the bandwidth budget and the
	// base-signal buffer (Section 3.3).
	cfg := core.Config{
		TotalBand: n / 10, // 10 % compression ratio
		MBase:     n / 8,
		Metric:    metrics.SSE,
	}

	comp, err := core.NewCompressor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Sensor side: compress the batch.
	t, err := comp.Encode(rows)
	if err != nil {
		log.Fatal(err)
	}
	frame, err := wire.Encode(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d values → transmission of %d values (%d base intervals + %d interval records), %d wire bytes\n",
		n, t.Cost, t.Ins(), len(t.Intervals), len(frame))

	// Base-station side: decode and compare.
	received, err := wire.DecodeBytes(frame)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := dec.Decode(received)
	if err != nil {
		log.Fatal(err)
	}

	for q := range rows {
		mse := metrics.MeanSquared(rows[q], approx[q])
		maxAbs := metrics.MaxAbsolute(rows[q], approx[q])
		fmt.Printf("quantity %d: per-value MSE %.5f, max abs error %.4f (signal range %.1f..%.1f)\n",
			q, mse, maxAbs, rows[q].Min(), rows[q].Max())
	}

	// Sketch original vs reconstruction for the first quantity.
	fmt.Println("\nquantity 0, first 64 samples (o = original, x = reconstruction):")
	sketch(rows[0][:64], approx[0][:64])
}

// sketch renders two small series as rows of a character plot.
func sketch(orig, approx timeseries.Series) {
	lo, hi := orig.Min(), orig.Max()
	const height = 12
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, len(orig))
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	level := func(v float64) int {
		l := int((v - lo) / (hi - lo) * float64(height-1))
		if l < 0 {
			l = 0
		}
		if l >= height {
			l = height - 1
		}
		return height - 1 - l
	}
	for i := range orig {
		grid[level(approx[i])][i] = 'x'
		grid[level(orig[i])][i] = 'o'
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
