// Netfeed runs the whole stack over a real TCP connection: a base station
// served by internal/netio, three streaming sensors (internal/sensor) on
// the fault-tolerant ReliableClient transport with the Section 4.4
// adaptive schedule, per-frame acknowledgements, and historical queries
// against the station at the end. This is the deployment shape of
// Figure 1 with the radio replaced by loopback TCP — the reliable client
// would retry, back off and reconnect exactly the same way over a link
// that actually loses frames (see internal/faultnet for the proof).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/sensor"
	"sbr/internal/station"
)

const (
	quantities = 3
	batchLen   = 256
	batches    = 8
)

func main() {
	cfg := core.Config{
		TotalBand: quantities * batchLen / 10, // 10 % ratio
		MBase:     quantities * batchLen / 8,
		Metric:    metrics.SSE,
	}

	st, err := station.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := netio.Serve(st, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("base station listening on %s\n", srv.Addr())

	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			runSensor(srv.Addr(), fmt.Sprintf("field-%d", k), cfg, int64(k))
		}(k)
	}
	wg.Wait()

	fmt.Println("\nstation state after all sensors disconnected:")
	for _, id := range st.Sensors() {
		stats, err := st.SensorStats(id)
		if err != nil {
			log.Fatal(err)
		}
		avg, err := st.Aggregate(id, 0, 0, batchLen, station.AggAvg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %d transmissions logged, first-batch avg(q0) = %.3f\n",
			id, stats.Transmissions, avg)
	}
}

// runSensor streams `batches` full buffers of correlated samples to the
// station over TCP and reports its bandwidth accounting.
func runSensor(addr, id string, cfg core.Config, seed int64) {
	client, err := netio.NewReliable(addr, id, netio.ReliableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		// Close flushes: every frame is acknowledged before the sensor exits.
		if err := client.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	s, err := sensor.New(sensor.Config{
		Core:       cfg,
		Quantities: quantities,
		BatchLen:   batchLen,
		Adaptive:   &core.AdaptivePolicy{MinFullRuns: 2, DegradeFactor: 1.5, Every: 4},
	}, func(_ *core.Transmission, frame []byte) error {
		return client.Send(frame)
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	phase := rng.Float64() * math.Pi
	for i := 0; i < batches*batchLen; i++ {
		t := float64(i)/40 + phase
		base := math.Sin(t) + 0.3*math.Sin(3*t)
		if err := s.Record(
			20+10*base+0.1*rng.NormFloat64(),
			50-15*base+0.2*rng.NormFloat64(),
			5+2*base+0.05*rng.NormFloat64(),
		); err != nil {
			log.Fatal(err)
		}
	}
	stats := s.Stats()
	raw := stats.Samples * quantities * 8
	fmt.Printf("%-8s shipped %d batches (%d full SBR runs, %d adaptive shortcuts): %d bytes vs %d raw (%.1fx reduction)\n",
		id, stats.Batches, stats.FullRuns, stats.Batches-stats.FullRuns,
		stats.FrameBytes, raw, float64(raw)/float64(stats.FrameBytes))
}
