// Stockfeed reproduces the paper's motivational example (Figures 2 and 3)
// and then applies the full pipeline to a stock-tick feed. Two market
// indexes that "go up and down together" are nearly a straight line in an
// XY scatter, so two regression coefficients approximate one series from
// the other — the observation the base signal generalises. The example
// prints the scatter, the fitted line, and then compares SBR against the
// wavelet baseline on ten correlated tickers.
package main

import (
	"fmt"
	"log"
	"strings"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
	"sbr/internal/wavelet"
)

func main() {
	// Figures 2–3: two correlated indexes over 128 days.
	industrial, insurance := datagen.StockIndexes(7)
	fit := regression.SSE(industrial, insurance, 0, 0, len(industrial))
	fmt.Printf("Insurance ≈ %.4f·Industrial + %.4f  (SSE %.2f over %d days, %.3f per day)\n",
		fit.A, fit.B, fit.Err, len(industrial), fit.Err/float64(len(industrial)))
	fmt.Println("\nXY scatter (Industrial vs Insurance), * = day, - = regression line:")
	scatter(industrial, insurance, fit)

	// The whole-series approximation of the motivational example: one
	// series stored exactly (the base), the other as just two values.
	approx := fit.Evaluate(industrial, 0, len(industrial))
	fmt.Printf("\napproximating Insurance with 2 values: per-value MSE %.4f (variance %.2f)\n",
		metrics.MeanSquared(insurance, approx), insurance.Variance())

	// Now the real pipeline on ten correlated tickers.
	ds := datagen.StocksSized(42, 1024, 10)
	n := ds.N() * ds.FileLen
	cfg := core.Config{TotalBand: n / 10, MBase: n / 10, Metric: metrics.SSE}
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompressing %d tickers × %d trades per transmission at a 10%% ratio:\n",
		ds.N(), ds.FileLen)
	fmt.Printf("  %-4s %14s %14s %9s\n", "tx", "SBR MSE", "wavelet MSE", "SBR wins")
	var sbrTotal, wavTotal float64
	for f := 0; f < ds.Files; f++ {
		batch := ds.File(f)
		t, err := comp.Encode(batch)
		if err != nil {
			log.Fatal(err)
		}
		got, err := dec.Decode(t)
		if err != nil {
			log.Fatal(err)
		}
		y := timeseries.Concat(batch...)
		sbrMSE := metrics.MeanSquared(y, timeseries.Concat(got...))
		wavMSE := metrics.MeanSquared(y, timeseries.Concat(wavelet.ApproximateRows(batch, cfg.TotalBand)...))
		sbrTotal += sbrMSE
		wavTotal += wavMSE
		fmt.Printf("  %-4d %14.6f %14.6f %9v\n", f, sbrMSE, wavMSE, sbrMSE < wavMSE)
	}
	fmt.Printf("\naverage MSE: SBR %.6f vs wavelets %.6f (%.1fx better)\n",
		sbrTotal/float64(ds.Files), wavTotal/float64(ds.Files), wavTotal/sbrTotal)
}

// scatter renders the XY plot of Figure 3 in ASCII, with the fitted line.
func scatter(x, y timeseries.Series, fit regression.Fit) {
	const width, height = 64, 20
	minX, maxX := x.Min(), x.Max()
	minY, maxY := y.Min(), y.Max()
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(xv, yv float64, ch byte) {
		c := int((xv - minX) / (maxX - minX) * float64(width-1))
		r := height - 1 - int((yv-minY)/(maxY-minY)*float64(height-1))
		if c >= 0 && c < width && r >= 0 && r < height && grid[r][c] == ' ' {
			grid[r][c] = ch
		}
	}
	for c := 0; c < width; c++ {
		xv := minX + (maxX-minX)*float64(c)/float64(width-1)
		plot(xv, fit.A*xv+fit.B, '-')
	}
	for i := range x {
		plot(x[i], y[i], '*')
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
