module sbr

go 1.22
