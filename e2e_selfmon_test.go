package sbr

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sbr/internal/httpapi"
	"sbr/internal/obs"
	"sbr/internal/obs/hist"
)

// TestEndToEndSelfMonitoring is the acceptance test for the self-hosted
// metrics plane: operational counters and latency histograms sampled
// into the SBR-compressed history for over an hour of (simulated) time,
// then queried back through the real /debug/metrics/history HTTP
// surface with windowed rate and quantile aggregates whose reported
// error must honour the configured bound; then a forced shed episode
// that flips /debug/alerts to a firing page and /readyz to 503, and a
// quiet period that clears both.
func TestEndToEndSelfMonitoring(t *testing.T) {
	reg := obs.NewRegistry()
	lat := reg.Histogram("sbr_station_receive_seconds", "ingest latency",
		obs.ExpBuckets(1e-4, 2, 10))
	shed := reg.Counter("sbr_netio_shed_total", "shed frames", obs.L("reason", "queue"))

	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const bound = 0.01
	s := hist.NewSampler(reg, hist.Options{
		Interval:        time.Second,
		ChunkSamples:    256,
		HotChunks:       2,
		ErrorBound:      bound,
		CheckpointEvery: 4,
		Now:             func() time.Time { return now },
		Filter:          func(name string) bool { return !strings.HasPrefix(name, "sbr_selfmon_") },
	})
	engine, err := hist.NewEngine(s, nil, hist.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	s.AfterTick(engine.Evaluate)

	hlth := httpapi.NewHealth(httpapi.Check{Name: "alerts", Probe: engine.PageErr})
	srv := httptest.NewServer(httpapi.NewDebugMux(httpapi.DebugOptions{
		Registry: reg,
		Health:   hlth,
		History:  s,
		Alerts:   engine,
	}))
	defer srv.Close()

	// tick drives n one-second sampling rounds: f mutates the metrics
	// the round will observe, then the sampler snapshots the registry.
	tick := func(n int, f func(i int)) {
		t.Helper()
		for i := 0; i < n; i++ {
			if f != nil {
				f(i)
			}
			s.Tick()
			now = now.Add(time.Second)
		}
	}

	// Over an hour of steady traffic: one ingest per second with a
	// slowly breathing latency, so both the derived _count counter and
	// the derived _p99 gauge accumulate well past the hot ring into
	// SBR-compressed cold windows.
	const quiet = 3700
	tick(quiet, func(i int) {
		lat.Observe(0.002 + 0.001*math.Sin(float64(i)/50))
	})
	if got := s.Series(); len(got) < 6 {
		t.Fatalf("sampler stored %d series, want the histogram family and shed counter", len(got))
	}

	// A 1h windowed rate over the compressed counter: 3601 samples,
	// ~3100 of them past the hot ring. Truth is exactly one observation
	// per second; the answer must cover it within its own reported
	// error, and that error must stay within the configured bound.
	rate := getResult(t, srv.URL+"/debug/metrics/history?series=sbr_station_receive_seconds_count&window=1h&agg=rate")
	if dev := math.Abs(rate.Value - 1.0); dev > rate.Err+1e-9 {
		t.Errorf("1h rate = %v ± %v, truth 1.0: deviation %v outside reported error", rate.Value, rate.Err, dev)
	}
	if rate.Err > bound {
		t.Errorf("1h rate reported error %v exceeds configured bound %v", rate.Err, bound)
	}
	if rate.Samples < 3600 {
		t.Errorf("1h rate answered from %d samples, want ≥ 3600", rate.Samples)
	}

	// A 1h quantile over the derived p99 latency gauge. The gauge never
	// leaves [0.001, 0.004]-ish territory, so the answer and its error
	// must be of that scale.
	q := getResult(t, srv.URL+"/debug/metrics/history?series=sbr_station_receive_seconds_p99&window=1h&agg=quantile&q=0.99")
	if q.Value <= 0 || q.Value > 0.1 {
		t.Errorf("1h p99-of-p99 = %v, want a plausible latency", q.Value)
	}
	if q.Err > bound {
		t.Errorf("1h quantile reported error %v exceeds configured bound %v", q.Err, bound)
	}

	// The sparkline view renders the same window as text.
	spark := get(t, srv.URL+"/debug/metrics/history?series=sbr_station_receive_seconds_p99&window=1h&format=spark", http.StatusOK)
	if !strings.Contains(spark, "sbr_station_receive_seconds_p99") {
		t.Errorf("spark view missing series name:\n%s", spark)
	}

	// Quiet network: nothing fires, the station is ready.
	assertAlertState(t, srv.URL, "shed-rate", "ok")
	assertReady(t, srv.URL, http.StatusOK)

	// Forced shed episode: 5 sheds per second for two minutes pushes
	// both the 1m and the 5m burn-rate windows past 1/s, so the page
	// fires and readiness follows it down.
	tick(120, func(int) { shed.Add(5) })
	assertAlertState(t, srv.URL, "shed-rate", "firing")
	body := assertReady(t, srv.URL, http.StatusServiceUnavailable)
	if !strings.Contains(body, "shed-rate") {
		t.Errorf("/readyz 503 body does not name the firing alert:\n%s", body)
	}

	// Ten quiet minutes drain both windows below threshold: the alert
	// resolves and readiness recovers.
	tick(600, nil)
	assertAlertState(t, srv.URL, "shed-rate", "ok")
	assertReady(t, srv.URL, http.StatusOK)
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d\n%s", url, resp.StatusCode, wantStatus, b)
	}
	return string(b)
}

func getResult(t *testing.T, url string) hist.Result {
	t.Helper()
	var out struct {
		Result hist.Result `json:"result"`
	}
	if err := json.Unmarshal([]byte(get(t, url, http.StatusOK)), &out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return out.Result
}

func assertAlertState(t *testing.T, base, rule, want string) {
	t.Helper()
	var out struct {
		Alerts []hist.AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/debug/alerts", http.StatusOK)), &out); err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Alerts {
		if a.Rule.Name == rule {
			if a.State != want {
				t.Errorf("alert %s state = %q (value %v), want %q", rule, a.State, a.Value, want)
			}
			return
		}
	}
	t.Errorf("alert %s not in /debug/alerts", rule)
}

func assertReady(t *testing.T, base string, want int) string {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("/readyz = %d, want %d\n%s", resp.StatusCode, want, b)
	}
	return string(b)
}
