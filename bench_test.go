// Package sbr holds the repository-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (each drives the same
// entry point the cmd/experiments tool prints from, at reduced "quick"
// scale so the suite stays fast), plus micro-benchmarks for the hot loops
// of the SBR pipeline. Regenerate the paper-scale numbers with
//
//	go run ./cmd/experiments -run all
package sbr

import (
	"fmt"
	"math"
	"testing"

	"sbr/internal/aggregate"
	"sbr/internal/base"
	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/dct"
	"sbr/internal/experiments"
	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
	"sbr/internal/wavelet"
	"sbr/internal/wire"
)

func quickCfg() experiments.Config { return experiments.Config{Seed: 42, Quick: true} }

// BenchmarkTable2Weather regenerates the Weather half of Table 2 (average
// SSE vs compression ratio, SBR vs Wavelets vs DCT vs Histograms).
func BenchmarkTable2Weather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		weather, _, err := experiments.Table2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(weather.Cell(0, experiments.MethodSBR), "sbr-mse")
	}
}

// BenchmarkTable2Stock regenerates the Stock half of Table 2.
func BenchmarkTable2Stock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, stock, err := experiments.Table2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stock.Cell(0, experiments.MethodSBR), "sbr-mse")
	}
}

// BenchmarkTable3Phone regenerates Table 3 (Phone Call dataset, average
// SSE and total sum squared relative error).
func BenchmarkTable3Phone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rel, err := experiments.Table3(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rel.Cell(0, experiments.MethodSBR), "sbr-rel")
	}
}

// BenchmarkTable4Mixed regenerates Table 4 (mixed dataset).
func BenchmarkTable4Mixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mse, _, err := experiments.Table4(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mse.Cell(0, experiments.MethodSBR), "sbr-mse")
	}
}

// BenchmarkTable5BaseSignals regenerates Table 5 (GetBase vs GetBaseSVD vs
// plain regression vs GetBaseDCT).
func BenchmarkTable5BaseSignals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio[0][0], "svd-over-getbase")
	}
}

// BenchmarkTable6Inserts regenerates Table 6 (base intervals inserted per
// transmission).
func BenchmarkTable6Inserts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		var total int
		for _, ins := range res.Inserts {
			for _, v := range ins {
				total += v
			}
		}
		b.ReportMetric(float64(total), "inserted")
	}
}

// BenchmarkFigure5Timing regenerates Figure 5 (running time vs TotalBand).
func BenchmarkFigure5Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Seconds[0][0]*1000, "ms-per-tx")
	}
}

// BenchmarkFigure6BaseSize regenerates Figure 6 (error vs base-signal
// size, plus SBR's automatic selection).
func BenchmarkFigure6BaseSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SBRChoice[0]), "sbr-picks")
	}
}

// BenchmarkSBRShortcut measures the Section 4.4 shortcut path
// (GetIntervals only, no base update) against the full path; see also
// `-run timing` in cmd/experiments.
func BenchmarkSBRShortcut(b *testing.B) {
	ds := datagen.StocksSized(42, 256, 2)
	n := ds.N() * ds.FileLen
	cfg := core.Config{TotalBand: n / 10, MBase: 256, Metric: metrics.SSE}
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := comp.Encode(ds.File(0)); err != nil {
		b.Fatal(err)
	}
	batch := ds.File(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.EncodeShortcut(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "values/s")
}

// --- micro-benchmarks for the hot loops ---

func benchSeries(n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = float64(i%17) * 0.37
	}
	return s
}

func BenchmarkRegressionSSE(b *testing.B) {
	x := benchSeries(256)
	y := benchSeries(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regression.SSE(x, y, 0, 0, 256)
	}
}

func BenchmarkRegressionSSEWithPrefix(b *testing.B) {
	x := benchSeries(256)
	y := benchSeries(256)
	px := timeseries.NewPrefix(x)
	var sumY, sumY2 float64
	for _, v := range y {
		sumY += v
		sumY2 += v * v
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regression.SSEWithPrefix(x, px, y, sumY, sumY2, 0, 0, 256)
	}
}

func BenchmarkRegressionMinimax(b *testing.B) {
	x := benchSeries(256)
	y := benchSeries(256)
	for i := 0; i < b.N; i++ {
		regression.Minimax(x, y, 0, 0, 256)
	}
}

func BenchmarkBestMapShiftScan(b *testing.B) {
	x := benchSeries(1024)
	y := benchSeries(64)
	m := interval.NewMapper(x, 64, regression.Fitter{Kind: metrics.SSE})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		iv := interval.Interval{Start: 0, Length: 64}
		m.BestMap(y, &iv)
	}
}

func BenchmarkGetIntervals(b *testing.B) {
	x := benchSeries(512)
	y := benchSeries(4096)
	m := interval.NewMapper(x, 64, regression.Fitter{Kind: metrics.SSE})
	for i := 0; i < b.N; i++ {
		interval.GetIntervals(m, y, 4, 1024, 400, interval.Options{})
	}
}

func BenchmarkGetBase(b *testing.B) {
	ds := datagen.StocksSized(1, 256, 1)
	fitter := regression.Fitter{Kind: metrics.SSE}
	for i := 0; i < b.N; i++ {
		base.GetBase(ds.File(0), 50, 8, fitter)
	}
}

func BenchmarkSBREncode(b *testing.B) {
	ds := datagen.StocksSized(42, 256, 1)
	n := ds.N() * ds.FileLen
	batch := ds.File(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{TotalBand: n / 10, MBase: 256, Metric: metrics.SSE}
		comp, err := core.NewCompressor(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := comp.Encode(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCorrelatedRows builds a deterministic batch of correlated rows: a
// shared periodic pattern with per-row affine distortion plus noise — the
// structure SBR's base signal thrives on, so the AutoIns search has real
// work to do.
func benchCorrelatedRows(seed int64, n, m int) []timeseries.Series {
	rows := make([]timeseries.Series, n)
	for r := range rows {
		s := float64(seed)*0.77 + float64(r)*0.13
		row := make(timeseries.Series, m)
		for i := range row {
			t := float64(i)
			row[i] = (1.5+0.2*float64(r))*(math.Sin(t/7+s)+0.5*math.Sin(t/3)) +
				3*float64(r) + 0.05*math.Sin(t*1.7+s*31)
		}
		rows[r] = row
	}
	return rows
}

// BenchmarkEncodeAutoIns measures the steady-state full SBR encode with the
// Algorithm 7 insert-count search enabled (the paper's default): pool
// builder, SSE metric, N=16 rows. This is the headline number of the encode
// fast path — the pool is warmed to capacity first so every iteration runs
// the search against a full base signal.
func BenchmarkEncodeAutoIns(b *testing.B) {
	const nRows, m = 16, 256 // N×M = 4096, W = 64
	cfg := core.Config{TotalBand: 512, MBase: 2048, Metric: metrics.SSE}
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]timeseries.Series, 8)
	for i := range batches {
		batches[i] = benchCorrelatedRows(int64(i), nRows, m)
	}
	for _, batch := range batches { // fill the pool to steady state
		if _, err := comp.Encode(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Encode(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(comp.LastReport().SearchEvals), "search-evals")
}

func BenchmarkWaveletTransform(b *testing.B) {
	s := benchSeries(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wavelet.Forward(s)
	}
}

func BenchmarkDCTTransform(b *testing.B) {
	s := benchSeries(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dct.Transform(s)
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	ds := datagen.StocksSized(42, 256, 1)
	n := ds.N() * ds.FileLen
	cfg := core.Config{TotalBand: n / 10, MBase: 256, Metric: metrics.SSE}
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	t, err := comp.Encode(ds.File(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := wire.Encode(t)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeBytes(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation and extension benchmarks ---

// BenchmarkAblationBenefitAdjust compares GetBase with and without the
// Figure-4 benefit adjustment (see `-run ablations`).
func BenchmarkAblationBenefitAdjust(b *testing.B) {
	ds := datagen.WeatherSized(42, 512, 2)
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultSBROptions()
		opts.Builder = core.BuilderGetBaseNoAdjust
		noAdj, err := experiments.RunSBR(ds, 0.10, opts)
		if err != nil {
			b.Fatal(err)
		}
		def, err := experiments.RunSBR(ds, 0.10, experiments.DefaultSBROptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(noAdj.AvgMSE/def.AvgMSE, "err-ratio")
	}
}

// BenchmarkAblationQuadratic compares the Section-6 quadratic encoding
// against the paper's linear one under equal bandwidth.
func BenchmarkAblationQuadratic(b *testing.B) {
	ds := datagen.StocksSized(42, 512, 2)
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultSBROptions()
		opts.Quadratic = true
		quad, err := experiments.RunSBR(ds, 0.10, opts)
		if err != nil {
			b.Fatal(err)
		}
		lin, err := experiments.RunSBR(ds, 0.10, experiments.DefaultSBROptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(quad.AvgMSE/lin.AvgMSE, "err-ratio")
	}
}

// BenchmarkGetBaseLowMem measures the O(√n)-space GetBase variant.
func BenchmarkGetBaseLowMem(b *testing.B) {
	ds := datagen.StocksSized(1, 256, 1)
	fitter := regression.Fitter{Kind: metrics.SSE}
	for i := 0; i < b.N; i++ {
		base.GetBaseLowMem(ds.File(0), 50, 8, fitter)
	}
}

// BenchmarkAdaptiveStream measures the adaptive (Section 4.4) pipeline
// end to end: mostly shortcut encodes after the base signal stabilises.
func BenchmarkAdaptiveStream(b *testing.B) {
	ds := datagen.StocksSized(42, 256, 4)
	n := ds.N() * ds.FileLen
	cfg := core.Config{TotalBand: n / 10, MBase: 256, Metric: metrics.SSE}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.NewAdaptiveCompressor(cfg, core.AdaptivePolicy{MinFullRuns: 1})
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < ds.Files; f++ {
			if _, _, err := a.Encode(ds.File(f)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAggregationEpoch measures one TAG aggregation epoch over a
// 64-node tree.
func BenchmarkAggregationEpoch(b *testing.B) {
	parents := map[string]string{}
	readings := map[string]float64{}
	prev := ""
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("n%02d", i)
		parents[id] = prev
		readings[id] = float64(i)
		if i%8 == 7 {
			prev = id // a new subtree root every 8 nodes
		}
	}
	tree, err := aggregate.NewTree(parents)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := tree.Epoch(readings); err != nil {
			b.Fatal(err)
		}
	}
}
