package sbr

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"sbr/internal/core"
	"sbr/internal/httpapi"
	"sbr/internal/metrics"
	"sbr/internal/segstore"
	"sbr/internal/sensor"
	"sbr/internal/station"
	"sbr/internal/timeseries"
)

// TestEndToEndStoreCrashRecovery is the durability capstone: a station
// archives to a segment store with a tight in-memory window, checkpoints
// mid-stream, then dies without warning. A fresh process over the same
// data directory must answer every HTTP query with byte-identical JSON —
// including ranges that live only in sealed segments on disk.
func TestEndToEndStoreCrashRecovery(t *testing.T) {
	const (
		batchLen = 64
		batches  = 24
	)
	cfg := core.Config{TotalBand: 8, MBase: 16, Metric: metrics.SSE}
	dir := t.TempDir()

	ingest := func(st *station.Station, s *sensor.Sensor, from, to int) {
		t.Helper()
		for i := from * batchLen; i < to*batchLen; i++ {
			v := 3*math.Sin(float64(i)/40) + math.Cos(float64(i)/7)
			if err := s.Record(v); err != nil {
				t.Fatal(err)
			}
		}
		_ = st
	}

	newSensor := func(st *station.Station, src uint64) *sensor.Sensor {
		t.Helper()
		s, err := sensor.New(sensor.Config{
			Core: cfg, Quantities: 1, BatchLen: batchLen,
		}, func(_ *core.Transmission, frame []byte) error {
			return st.ReceiveFrameFrom("field-1", src, frame)
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// First life: ingest, checkpoint at batch 16, keep going, crash.
	st1, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store1, err := segstore.Open(segstore.Options{Dir: dir, Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	st1.SetArchive(store1, 6)
	sn := newSensor(st1, 7)
	ingest(st1, sn, 0, 16)
	if err := st1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ingest(st1, sn, 16, batches)

	// Record the answers the live station serves right before the crash.
	urls := []string{
		"/v1/sensors",
		"/v1/point?sensor=field-1&row=0&idx=3",
		"/v1/point?sensor=field-1&row=0&idx=900",
		"/v1/range?sensor=field-1&row=0&from=0&to=128",
		"/v1/range?sensor=field-1&row=0&from=500&to=700",
		"/v1/range?sensor=field-1&row=0",
		"/v1/aggregate?sensor=field-1&row=0&kind=avg",
		"/v1/aggregate?sensor=field-1&row=0&from=10&to=1000&kind=max",
		"/v1/aggregate?sensor=field-1&row=0&from=0&to=64&kind=sum",
		"/v1/downsample?sensor=field-1&row=0&points=12",
		"/v1/exceedances?sensor=field-1&row=0&threshold=2.5",
	}
	serve := func(st *station.Station) map[string]string {
		api := httptest.NewServer(httpapi.New(st, 8))
		defer api.Close()
		out := make(map[string]string, len(urls))
		for _, u := range urls {
			resp, err := http.Get(api.URL + u)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %d %s", u, resp.StatusCode, body)
			}
			out[u] = string(body)
		}
		return out
	}
	before := serve(st1)
	// Crash: no Close, no final checkpoint. The fsynced segment files are
	// all that survives.

	// Second life over the same directory.
	store2, err := segstore.Open(segstore.Options{Dir: dir, Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	st2, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2.SetArchive(store2, 6)
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FromCheckpoint {
		t.Error("recovery did not use the checkpoint")
	}
	if rec.Replayed != batches-16 {
		t.Errorf("replayed %d frames, want the %d-frame tail", rec.Replayed, batches-16)
	}

	after := serve(st2)
	for _, u := range urls {
		if after[u] != before[u] {
			t.Errorf("GET %s differs after crash recovery:\n  before: %s\n  after:  %s",
				u, before[u], after[u])
		}
	}

	// And the recovered process accepts live traffic on the same stream.
	var tail timeseries.Series
	for i := batches * batchLen; i < (batches+1)*batchLen; i++ {
		tail = append(tail, 3*math.Sin(float64(i)/40)+math.Cos(float64(i)/7))
	}
	// A rebooted sensor restarts its sequence numbers under a fresh
	// incarnation nonce: the station resets its replica and keeps
	// extending the record.
	sn2 := newSensor(st2, 8)
	for _, v := range tail {
		if err := sn2.Record(v); err != nil {
			t.Fatal(err)
		}
	}
	n, err := st2.HistoryLen("field-1")
	if err != nil {
		t.Fatal(err)
	}
	if n != (batches+1)*batchLen {
		t.Errorf("history after post-recovery ingest: %d samples, want %d", n, (batches+1)*batchLen)
	}
}
