package sbr

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"sbr/internal/core"
	"sbr/internal/httpapi"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/obs"
	"sbr/internal/sensor"
	"sbr/internal/station"
)

// TestEndToEndObservability is the telemetry twin of TestEndToEndSystem:
// the stationd wiring (instrumented station + netio server + query API +
// debug mux) assembled in-process, frames driven over real TCP, and the
// /debug/metrics and /debug/vars planes scraped live. It asserts that
// the exposition is well-formed Prometheus text and that the counters of
// every layer — netio, station, core/SBR, query, httpapi — actually move.
func TestEndToEndObservability(t *testing.T) {
	const (
		quantities = 2
		batchLen   = 128
		batches    = 3
	)
	cfg := core.Config{
		TotalBand: quantities * batchLen / 8,
		MBase:     quantities * batchLen / 8,
		Metric:    metrics.MaxAbs, // exercises the §4.5 error-bound metrics too
	}

	reg := obs.NewRegistry()
	st, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Instrument(reg)

	srv, err := netio.ServeWith(st, "127.0.0.1:0", netio.Options{
		Metrics: netio.NewMetrics(reg),
		Logger:  obs.NewLogger(io.Discard, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The stationd-style admin mux, served for real over HTTP.
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", reg.MetricsHandler())
	mux.Handle("/debug/vars", reg.VarsHandler())
	debug := httptest.NewServer(mux)
	defer debug.Close()

	api := httptest.NewServer(httpapi.NewObserved(st, 8, reg))
	defer api.Close()

	// Stream real frames over TCP, keeping the last frame so the
	// retransmission path can be exercised afterwards.
	client, err := netio.Dial(srv.Addr(), "obs-sensor")
	if err != nil {
		t.Fatal(err)
	}
	var lastFrame []byte
	sn, err := sensor.New(sensor.Config{Core: cfg, Quantities: quantities, BatchLen: batchLen},
		func(_ *core.Transmission, frame []byte) error {
			lastFrame = append(lastFrame[:0], frame...)
			return client.Send(frame)
		})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < batches*batchLen; i++ {
		x := float64(i) / 30
		if err := sn.Record(math.Sin(x)+0.05*rng.NormFloat64(), math.Cos(x)+0.05*rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}

	// A retransmitted, already-accepted frame (the lost-ack scenario) must
	// be re-acknowledged OK and counted as a duplicate, not double-logged.
	if err := client.Send(lastFrame); err != nil {
		t.Fatalf("retransmitted frame not re-acked: %v", err)
	}

	// A frame with a corrupted magic must be counted as a decode reject.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{'S', 'B', 'R', 'S', 3, 'b', 'a', 'd'}) //nolint:errcheck
	raw.Write([]byte("XXXXgarbage-frame-bytes"))            //nolint:errcheck
	ack := make([]byte, 1)
	if _, err := io.ReadFull(raw, ack); err != nil || ack[0] == 0x06 {
		t.Fatalf("garbage frame not rejected: ack=%v err=%v", ack, err)
	}
	raw.Close()

	// Exercise the query API: aggregate hits the index, range twice hits
	// the history cache (miss then hit).
	for _, path := range []string{
		"/v1/aggregate?sensor=obs-sensor&row=0&kind=avg",
		"/v1/range?sensor=obs-sensor&row=0&from=0&to=64",
		"/v1/range?sensor=obs-sensor&row=0&from=64&to=128",
	} {
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	vals := scrapeMetrics(t, debug.URL+"/debug/metrics")

	wantAtLeast := map[string]float64{
		"sbr_netio_connections_total":                             2,
		"sbr_netio_frames_accepted_total":                         batches,
		`sbr_netio_frames_rejected_total{reason="decode"}`:        1,
		"sbr_netio_bytes_in_total":                                1,
		"sbr_netio_frame_seconds_count":                           batches,
		"sbr_station_transmissions_total":                         batches,
		"sbr_station_sensors":                                     1,
		"sbr_station_receive_seconds_count":                       batches,
		"sbr_station_index_depth":                                 1,
		"sbr_core_intervals_total":                                1,
		"sbr_core_achieved_error_count":                           batches,
		"sbr_core_error_bound_count":                              batches,
		"sbr_query_index_queries_total":                           1,
		"sbr_query_index_nodes_total":                             1,
		`sbr_httpapi_requests_total{endpoint="/v1/aggregate"}`:    1,
		`sbr_httpapi_requests_total{endpoint="/v1/range"}`:        2,
		`sbr_httpapi_request_seconds_count{endpoint="/v1/range"}`: 2,
		`sbr_httpapi_cache_events_total{kind="miss"}`:             1,
		`sbr_httpapi_cache_events_total{kind="hit"}`:              1,
		"sbr_netio_frames_duplicate_total":                        1,
	}
	for name, want := range wantAtLeast {
		if got := vals[name]; got < want {
			t.Errorf("metric %s = %g, want >= %g", name, got, want)
		}
	}

	// The fault-tolerance counters are part of the scrape surface even
	// when nothing has gone wrong: dashboards and alerts bind to them at
	// deploy time, not at first failure.
	for _, name := range []string{
		"sbr_netio_retries_total",
		"sbr_netio_reconnects_total",
		"sbr_netio_connections_shed_total",
		"sbr_station_replayed_frames_total",
		"sbr_station_duplicates_total",
		"sbr_station_torn_tails_total",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("metric %s missing from the exposition", name)
		}
	}

	// Histogram exposition must be internally consistent: the +Inf bucket
	// equals the series count.
	inf := vals[`sbr_station_receive_seconds_bucket{le="+Inf"}`]
	if cnt := vals["sbr_station_receive_seconds_count"]; inf != cnt {
		t.Errorf("+Inf bucket %g != count %g", inf, cnt)
	}

	// /debug/vars must be a parseable JSON dump of the same registry.
	resp, err := http.Get(debug.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if got := dump["sbr_netio_frames_accepted_total"].(float64); got < batches {
		t.Errorf("/debug/vars frames accepted = %g, want >= %d", got, batches)
	}

	// /v1/stats reports per-sensor stats and the cache counters.
	resp2, err := http.Get(api.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats struct {
		Sensors map[string]struct {
			Transmissions int `json:"transmissions"`
			Values        int `json:"values"`
		} `json:"sensors"`
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sensors["obs-sensor"].Transmissions != batches {
		t.Errorf("/v1/stats transmissions = %d, want %d", stats.Sensors["obs-sensor"].Transmissions, batches)
	}
	if stats.Cache.Misses < 1 || stats.Cache.Hits < 1 {
		t.Errorf("/v1/stats cache = %+v, want at least one hit and one miss", stats.Cache)
	}

	client.Close()
}

// scrapeMetrics GETs a Prometheus text exposition, validates its shape
// line by line, and returns every series as name{labels} → value.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	types := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Series lines are "name{labels} value" with no spaces inside the
		// label block (the exposition never emits spaces in label values
		// here), so two fields exactly.
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed series line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("series %q has non-numeric value: %v", line, err)
		}
		out[fields[0]] = v
		// Every series must belong to a typed family: its name, or the
		// name with a histogram suffix stripped, has a TYPE header.
		base := fields[0]
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		ok := false
		for _, cand := range []string{
			base,
			strings.TrimSuffix(base, "_bucket"),
			strings.TrimSuffix(base, "_sum"),
			strings.TrimSuffix(base, "_count"),
		} {
			if _, hit := types[cand]; hit {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("series %q has no TYPE header", line)
		}
	}
	if len(out) == 0 {
		t.Fatal("empty exposition")
	}
	return out
}
