package sbr

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"sbr/internal/core"
	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// encodeFrames runs a fresh compressor over the batches and returns the
// wire frame of every transmission. The compressor is created inside so
// each call replays the identical pool evolution from scratch.
func encodeFrames(t *testing.T, cfg core.Config, batches [][]timeseries.Series) [][]byte {
	t.Helper()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, len(batches))
	for i, batch := range batches {
		tx, err := comp.Encode(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		frames[i], err = wire.Encode(tx)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return frames
}

// TestEncodeDeterministicAcrossProcs is the bit-determinism contract of the
// parallel shift-scan engine: for every base builder and error metric, the
// full AutoIns encode must produce byte-identical wire frames whether the
// engine runs on one worker or many. ParallelScanThreshold is dropped to 1
// so even these small inputs take the chunked parallel path, and the whole
// matrix runs under -race in CI (see make race).
func TestEncodeDeterministicAcrossProcs(t *testing.T) {
	savedThreshold := interval.ParallelScanThreshold
	interval.ParallelScanThreshold = 1
	savedProcs := runtime.GOMAXPROCS(0)
	defer func() {
		interval.ParallelScanThreshold = savedThreshold
		runtime.GOMAXPROCS(savedProcs)
	}()

	const nRows, m, batches = 4, 128, 3
	data := make([][]timeseries.Series, batches)
	for i := range data {
		data[i] = benchCorrelatedRows(int64(i), nRows, m)
	}

	builders := []struct {
		name string
		b    core.BaseBuilder
	}{
		{"GetBase", core.BuilderGetBase},
		{"GetBaseLowMem", core.BuilderGetBaseLowMem},
		{"SVD", core.BuilderSVD},
	}
	kinds := []metrics.Kind{metrics.SSE, metrics.RelativeSSE, metrics.MaxAbs}

	type variant struct {
		name string
		cfg  core.Config
	}
	var variants []variant
	for _, bl := range builders {
		for _, k := range kinds {
			variants = append(variants, variant{
				name: fmt.Sprintf("%s/%s", bl.name, k),
				cfg:  core.Config{TotalBand: 128, MBase: 512, Metric: k, Builder: bl.b},
			})
		}
		// The non-linear encoding extension shares the same scan engine.
		variants = append(variants, variant{
			name: bl.name + "/sse-quadratic",
			cfg:  core.Config{TotalBand: 128, MBase: 512, Metric: metrics.SSE, Builder: bl.b, Quadratic: true},
		})
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			sequential := encodeFrames(t, v.cfg, data)
			runtime.GOMAXPROCS(4)
			parallel := encodeFrames(t, v.cfg, data)
			for i := range sequential {
				if !bytes.Equal(sequential[i], parallel[i]) {
					t.Fatalf("batch %d: wire frames differ between GOMAXPROCS=1 and 4 (%d vs %d bytes)",
						i, len(sequential[i]), len(parallel[i]))
				}
			}
		})
	}
}
