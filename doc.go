// Package sbr is a from-scratch Go reproduction of "Compressing Historical
// Information in Sensor Networks" (Deligiannakis, Kotidis, Roussopoulos —
// SIGMOD 2004): the Self-Based Regression (SBR) lossy compression framework
// for correlated time series, with every substrate its evaluation depends
// on.
//
// The repository root holds only documentation and the benchmark harness
// (one benchmark per table and figure of the paper); all code lives under
// internal/, the executables under cmd/, and the runnable demonstrations
// under examples/. Start with README.md for the tour, DESIGN.md for the
// system inventory and the per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record.
package sbr
