package sbr

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/faultnet"
	"sbr/internal/httpapi"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/segstore"
	"sbr/internal/sensornet"
	"sbr/internal/station"
)

// stageCount flattens a span tree into stage → occurrence counts.
func stageCount(tree []*trace.SpanView) map[string]int {
	out := map[string]int{}
	var walk func(vs []*trace.SpanView)
	walk = func(vs []*trace.SpanView) {
		for _, v := range vs {
			out[v.Stage]++
			walk(v.Children)
		}
	}
	walk(tree)
	return out
}

// findStages returns every span with the given stage, depth-first.
func findStages(tree []*trace.SpanView, stage string) []*trace.SpanView {
	var out []*trace.SpanView
	for _, v := range tree {
		if v.Stage == stage {
			out = append(out, v)
		}
		out = append(out, findStages(v.Children, stage)...)
	}
	return out
}

// TestEndToEndTracing is the acceptance proof for wire-propagated tracing:
// simulated sensors encode batches (trace born at encode), the frames ride
// a reliable uplink through a fault injector that forces retransmissions,
// a trace-aware netio server feeds a segment-store-backed station, and an
// HTTP query later joins the same trace via the X-Sbr-Trace header. One
// frame must come out as ONE trace whose span tree covers every stage —
// encode, transport send/receive, station receive, archive append, query —
// with the parent/child links the pipeline implies.
func TestEndToEndTracing(t *testing.T) {
	const (
		quantities = 2
		batchLen   = 64
		batches    = 8
		nodes      = 2
	)
	cfg := core.Config{
		TotalBand: quantities * batchLen / 8,
		MBase:     quantities * batchLen / 8,
		Metric:    metrics.SSE,
	}

	// One recorder spans the whole in-process deployment: sensor-side
	// births, transport spans, and station-side continuations all join on
	// the wire-propagated ID.
	rec := trace.NewRecorder(trace.Options{SampleEvery: 1, Capacity: 256, MaxInflight: 256})

	// The simulated field. Every encoded frame is traced (SampleEvery 1).
	net, err := sensornet.NewNetwork(cfg, sensornet.DefaultEnergyModel(), 40, batchLen)
	if err != nil {
		t.Fatal(err)
	}
	net.Trace(rec)
	for k := 0; k < nodes; k++ {
		rng := rand.New(rand.NewSource(int64(100 + k)))
		id := fmt.Sprintf("node-%02d", k)
		if err := net.AddNode(id, float64(k+1)*20, 20, func(round int) []float64 {
			x := float64(round) / 20
			return []float64{math.Sin(x) + 0.05*rng.NormFloat64(), math.Cos(x) + 0.05*rng.NormFloat64()}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Build(); err != nil {
		t.Fatal(err)
	}

	// The remote station: segment-store archive (tiny segments so seals
	// happen), bounded memory window (so cold queries exist), same tracer.
	st, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segstore.Open(segstore.Options{Dir: t.TempDir(), Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	st.SetArchive(seg, 6)
	st.SetTracer(rec)

	srv, err := netio.ServeWith(st, "127.0.0.1:0", netio.Options{
		Tracer:           rec,
		Logger:           obs.NewLogger(io.Discard, nil),
		HandshakeTimeout: time.Second,
		IdleTimeout:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The uplink crosses a fault injector that drops and cuts: delivery
	// needs retransmissions, and each retry must land in the SAME trace.
	inj := faultnet.New(faultnet.Config{
		Seed:     21,
		Drop:     0.06,
		Cut:      0.02,
		Delay:    0.05,
		MaxDelay: time.Millisecond,
	})
	met := netio.NewMetrics(obs.NewRegistry())
	clients := make(map[string]*netio.ReliableClient)
	net.Deliver = func(id string, frame []byte) error {
		rc, ok := clients[id]
		if !ok {
			var err error
			rc, err = netio.NewReliable(srv.Addr(), id, netio.ReliableOptions{
				Dial:        inj.Dialer(time.Second),
				AckTimeout:  200 * time.Millisecond,
				BackoffBase: time.Millisecond,
				BackoffMax:  20 * time.Millisecond,
				MaxAttempts: 200,
				Window:      4,
				Metrics:     met,
				Tracer:      rec,
				Rand:        rand.New(rand.NewSource(5)),
			})
			if err != nil {
				return err
			}
			clients[id] = rc
		}
		return rc.Send(frame)
	}

	if _, err := net.Run(batches * batchLen); err != nil {
		t.Fatal(err)
	}
	for id, rc := range clients {
		if err := rc.Close(); err != nil {
			t.Fatalf("uplink %s: %v (%s)", id, err, inj)
		}
	}
	if met.Retries.Value() == 0 && met.Reconnects.Value() == 0 {
		t.Fatalf("fault schedule too gentle (%s): nothing was retried, the join claim is untested", inj)
	}
	t.Logf("%s; retries=%d reconnects=%d", inj, met.Retries.Value(), met.Reconnects.Value())

	const wantFrames = nodes * batches
	stats, err := st.SensorStats("node-00")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != batches {
		t.Fatalf("remote station holds %d transmissions for node-00, want %d", stats.Transmissions, batches)
	}

	// Every frame became exactly one trace. The recorder holds them all
	// (capacity exceeds the run), each with exactly one encode root and one
	// netio.send — a restarted trace would fork a second root or a second
	// send span.
	traces := rec.Recent(0)
	if len(traces) < wantFrames {
		t.Fatalf("recorder holds %d traces, want at least %d", len(traces), wantFrames)
	}
	retried := 0
	full := 0
	var probe *trace.Trace // a trace that crossed the faulted uplink
	for _, tr := range traces {
		tv := tr.Snapshot(true)
		if len(tv.Tree) != 1 {
			t.Fatalf("trace %s has %d roots, want 1", tv.ID, len(tv.Tree))
		}
		if tv.Tree[0].Stage != "encode" {
			t.Fatalf("trace %s root is %q, want the birth stage encode", tv.ID, tv.Tree[0].Stage)
		}
		stages := stageCount(tv.Tree)
		if stages["netio.send"] > 1 {
			t.Fatalf("trace %s has %d netio.send spans: retransmissions forked the trace", tv.ID, stages["netio.send"])
		}
		if stages["netio.retry"] > 0 {
			retried++
		}
		if stages["netio.send"] == 1 && stages["netio.recv"] >= 1 &&
			stages["station.receive"] >= 1 && stages["segstore.append"] >= 1 {
			full++
			probe = tr
		}
	}
	if met.Retries.Value() > 0 && retried == 0 {
		t.Error("frames were retried but no trace carries a netio.retry span")
	}
	if full < wantFrames {
		t.Fatalf("only %d/%d traces cover encode→send→recv→receive→append", full, wantFrames)
	}

	// Parent/child links on one fully travelled trace: the send half hangs
	// off the encode root; the archive append and the decode are children of
	// a station receive. (The trace holds two station.receive spans — the
	// simulator's internal base station and the remote one behind netio —
	// and only the remote one owns an archive, so the append must sit under
	// at least one of them.)
	ptv := probe.Snapshot(true)
	root := ptv.Tree[0]
	if len(findStages(root.Children, "netio.send")) == 0 {
		t.Error("netio.send is not a child of the encode root")
	}
	recvs := findStages(ptv.Tree, "station.receive")
	if len(recvs) == 0 {
		t.Fatal("no station.receive span")
	}
	var appends, decodes int
	for _, recv := range recvs {
		appends += len(findStages(recv.Children, "segstore.append"))
		decodes += len(findStages(recv.Children, "station.decode"))
	}
	if appends == 0 {
		t.Error("segstore.append is not a child of any station.receive")
	}
	if decodes == 0 {
		t.Error("station.decode is not a child of any station.receive")
	}

	// The query API joins the same trace via the X-Sbr-Trace header: the
	// span tree gains an http.range stage, and the response echoes the ID.
	api := httptest.NewServer(httpapi.New(st, 8))
	defer api.Close()
	tid := probe.TraceID().String()
	req, err := http.NewRequest("GET", api.URL+"/v1/range?sensor=node-00&row=0&from=0&to=64", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(httpapi.TraceHeader, tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range query: status %d", resp.StatusCode)
	}
	if echo := resp.Header.Get(httpapi.TraceHeader); echo != tid {
		t.Errorf("response trace header %q, want %q", echo, tid)
	}
	qtv := probe.Snapshot(true)
	qs := stageCount(qtv.Tree)
	if qs["http.range"] == 0 {
		t.Error("query did not join the frame's trace: no http.range span")
	}
	if qs["station.history"] == 0 {
		t.Error("no station.history span under the query")
	}
	// The history reconstruction reached past the 6-chunk memory window
	// (8 batches landed), so the query walked the cold path and the trace
	// attributes the archive fetches.
	if qs["segstore.cold_fetch"] == 0 {
		t.Error("query over evicted chunks recorded no segstore.cold_fetch span")
	}

	// The /debug/traces surface over real HTTP: list finds the trace,
	// detail returns its tree.
	debug := httptest.NewServer(rec.Handler("/debug/traces"))
	defer debug.Close()
	lresp, err := http.Get(debug.URL + "/debug/traces?sensor=node-00&limit=500")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Traces    []trace.TraceView `json:"traces"`
		Exemplars []struct {
			Stage string `json:"stage"`
		} `json:"exemplars"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) < batches {
		t.Errorf("/debug/traces lists %d node-00 traces, want >= %d", len(list.Traces), batches)
	}
	if len(list.Exemplars) == 0 {
		t.Error("/debug/traces reports no slow-path exemplars")
	}
	dresp, err := http.Get(debug.URL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var tv trace.TraceView
	if err := json.NewDecoder(dresp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if tv.ID != tid || len(tv.Tree) != 1 || tv.Tree[0].Stage != "encode" {
		t.Errorf("/debug/traces/%s returned %+v", tid, tv)
	}
}
