package sbr

import (
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/faultnet"
	"sbr/internal/httpapi"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/obs"
	"sbr/internal/outbox"
	"sbr/internal/segstore"
	"sbr/internal/station"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// TestChaosSoakSurvivableUplink is the survivable-uplink capstone: one
// sensor streams a fixed frame sequence through a congested, faulty link
// while every failure mode this PR defends against fires at least once —
//
//   - the sensor is "kill -9"ed mid-transmission (client and outbox
//     abandoned with frames written but unacknowledged) and a new
//     incarnation replays the durable outbox under the same nonce;
//   - the station process crashes (server, station and segment store
//     abandoned without a checkpoint flush) and a fresh process recovers
//     from the archive on the same address, while the sensor's circuit
//     breaker turns the dead station into durable local spooling;
//   - the recovered station comes back degraded, sheds the sensor with
//     retry-after busy acks, and /readyz answers 503 until the episode
//     ends — then flips back to 200 and the backlog drains.
//
// Afterwards the station history must be byte-identical to a fault-free
// reference, every frame delivered exactly once, the outbox empty, and
// no phantom sensor reboot recorded. SBR_SOAK=1 scales the run up for
// the dedicated soak CI job; the default stays test-suite sized.
func TestChaosSoakSurvivableUplink(t *testing.T) {
	const batchLen = 16
	nFrames := 48
	if os.Getenv("SBR_SOAK") != "" {
		nFrames = 240
	}
	// Phase boundaries: [0,a) die with the first sensor incarnation,
	// [a,b) stream live, [b,c) are sent against a dead station, [c,n)
	// after recovery.
	a, b, c := nFrames/3, nFrames/3*2, nFrames/6*5

	cfg := core.Config{TotalBand: 8, MBase: 8, Metric: metrics.SSE}
	frames := make([][]byte, 0, nFrames)
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nFrames; i++ {
		row := make(timeseries.Series, batchLen)
		for j := range row {
			x := float64(i*batchLen+j) / 9
			row[j] = 3*math.Sin(x) + 0.5*math.Cos(5*x)
		}
		tr, err := comp.Encode([]timeseries.Series{row})
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}

	// Fault-free reference: what the history must equal, bit for bit.
	ref, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, frame := range frames {
		if err := ref.ReceiveFrame("soak-node", frame); err != nil {
			t.Fatalf("reference frame %d: %v", i, err)
		}
	}
	wantHist, err := ref.History("soak-node", 0)
	if err != nil {
		t.Fatal(err)
	}

	// The link: lossy AND congested — drops, cuts and delays on top of a
	// bandwidth throttle with latency jitter, all seeded.
	inj := faultnet.New(faultnet.Config{
		Seed:        1234,
		Drop:        0.01,
		Cut:         0.008,
		Delay:       0.05,
		MaxDelay:    2 * time.Millisecond,
		BytesPerSec: 64 << 10,
		Jitter:      500 * time.Microsecond,
	})

	dataDir := t.TempDir()
	obPath := filepath.Join(t.TempDir(), "soak-node.outbox")
	var degraded atomic.Bool

	srvReg := obs.NewRegistry()
	srvMet := netio.NewMetrics(srvReg)
	cliReg := obs.NewRegistry()
	cliMet := netio.NewMetrics(cliReg)

	newStore := func() *segstore.Store {
		st, err := segstore.Open(segstore.Options{Dir: dataDir, Config: cfg, SegmentChunks: 4})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st1, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st1.SetArchive(newStore(), 6)
	srv1, err := netio.ServeWith(st1, "127.0.0.1:0", netio.Options{Metrics: srvMet})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	newClient := func(window int) (*netio.ReliableClient, *outbox.Outbox) {
		t.Helper()
		ob, err := outbox.Open(obPath, outbox.Options{Sensor: "soak-node"})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := netio.NewReliable(addr, "soak-node", netio.ReliableOptions{
			Dial:             inj.Dialer(time.Second),
			AckTimeout:       300 * time.Millisecond,
			BackoffBase:      2 * time.Millisecond,
			BackoffMax:       30 * time.Millisecond,
			MaxAttempts:      500,
			Window:           window,
			Outbox:           ob,
			BreakerThreshold: 4,
			BreakerCooldown:  50 * time.Millisecond,
			Metrics:          cliMet,
			Rand:             rand.New(rand.NewSource(55)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rc, ob
	}

	// flushUntil drives Flush through breaker cooldowns and shed busy
	// acks until it succeeds or the deadline decides the link is truly
	// wedged.
	flushUntil := func(rc *netio.ReliableClient, within time.Duration) error {
		deadline := time.Now().Add(within)
		for {
			err := rc.Flush()
			if err == nil {
				return nil
			}
			if !errors.Is(err, netio.ErrBreakerOpen) && !errors.Is(err, netio.ErrBusy) {
				return err
			}
			if time.Now().After(deadline) {
				return err
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// ---- Phase 1: first sensor incarnation dies mid-transmission. ----
	// The window exceeds the phase, so every frame is written to the wire
	// but none is retired: the "kill -9" abandons the client with its
	// whole outbox unacknowledged (a crash between write and ack).
	rc1, _ := newClient(nFrames)
	for i := 0; i < a; i++ {
		if err := rc1.Send(frames[i]); err != nil {
			t.Fatalf("phase-1 send %d: %v", i, err)
		}
	}
	if rc1.Unacked() == 0 {
		t.Fatal("phase-1 client has nothing unacked; the crash would prove nothing")
	}
	// Crash: rc1 and its outbox handle are simply abandoned.

	// ---- Phase 2: new incarnation replays the outbox, streams on. ----
	rc2, ob := newClient(8)
	if rc2.Unacked() != a {
		t.Fatalf("restarted sensor queued %d outbox frames, want %d", rc2.Unacked(), a)
	}
	for i := a; i < b; i++ {
		if err := rc2.Send(frames[i]); err != nil {
			t.Fatalf("phase-2 send %d: %v", i, err)
		}
		if i == (a+b)/2 {
			// Checkpoint mid-stream, with more frames still to come before
			// the crash, so the station flap exercises the real recovery
			// shape: checkpoint load plus a non-empty tail replay.
			if err := flushUntil(rc2, 30*time.Second); err != nil {
				t.Fatalf("pre-checkpoint flush: %v (%s)", err, inj)
			}
			if err := st1.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := flushUntil(rc2, 30*time.Second); err != nil {
		t.Fatalf("phase-2 flush: %v (%s)", err, inj)
	}

	// ---- Phase 3: the station crashes. ----
	// Close only the listener/conns; station and store are abandoned
	// un-checkpointed, like a process death. The sensor keeps producing:
	// the breaker trips and the frames drain to the durable outbox.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := b; i < c; i++ {
		if err := rc2.Send(frames[i]); err != nil {
			t.Fatalf("send %d against a dead station: %v", i, err)
		}
	}
	if cliMet.BreakerTrips.Value() == 0 {
		t.Error("the station flap never tripped the breaker")
	}

	// ---- Phase 4: a fresh station process recovers — degraded. ----
	st2, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2.SetArchive(newStore(), 6)
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FromCheckpoint {
		t.Error("recovery ignored the checkpoint")
	}
	if rec.Replayed == 0 {
		t.Error("recovery replayed no tail frames; the flap landed exactly on the checkpoint")
	}
	degradedFn := func() bool { return degraded.Load() || st2.ArchiveDegraded() }
	degraded.Store(true) // forced shed episode: up, but refusing work
	srv2, err := netio.ServeWith(st2, addr, netio.Options{
		Metrics:         srvMet,
		ArchiveDegraded: degradedFn,
		RetryAfter:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()

	// The health surfaces, wired exactly as cmd/stationd wires them.
	h := httpapi.NewHealth(
		httpapi.Check{Name: "draining", Probe: func() error {
			if srv2.Draining() {
				return errors.New("draining")
			}
			return nil
		}},
		httpapi.Check{Name: "admission", Probe: func() error {
			if reason := srv2.OverWatermark(); reason != "" {
				return errors.New("shedding: " + reason)
			}
			return nil
		}},
	)
	mux := http.NewServeMux()
	h.Register(mux)
	web := httptest.NewServer(mux)
	defer web.Close()
	readyz := func() int {
		t.Helper()
		resp, err := http.Get(web.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during the shed episode = %d, want 503", code)
	}
	// Drive the client into the shed at least once: each flush attempt
	// (re)probes the breaker, dials, and is turned away busy.
	shedBy := time.Now().Add(10 * time.Second)
	for srvMet.ShedDegraded.Value() == 0 {
		if time.Now().After(shedBy) {
			t.Fatal("the degraded station never shed the sensor")
		}
		rc2.Flush() //nolint:errcheck — expected to fail while shedding
		time.Sleep(20 * time.Millisecond)
	}
	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while actively shedding = %d, want 503", code)
	}
	degraded.Store(false) // episode over
	if code := readyz(); code != http.StatusOK {
		t.Errorf("/readyz after the shed episode = %d, want 200", code)
	}
	if err := flushUntil(rc2, 30*time.Second); err != nil {
		t.Fatalf("post-recovery flush: %v (%s)", err, inj)
	}

	// ---- Phase 5: the tail streams normally; then the full audit. ----
	for i := c; i < nFrames; i++ {
		if err := rc2.Send(frames[i]); err != nil {
			t.Fatalf("phase-5 send %d: %v", i, err)
		}
	}
	if err := flushUntil(rc2, 30*time.Second); err != nil {
		t.Fatalf("final flush: %v (%s)", err, inj)
	}
	if err := rc2.Close(); err != nil {
		t.Fatalf("close after a clean flush: %v", err)
	}
	if got := ob.PendingCount(); got != 0 {
		t.Errorf("outbox still holds %d frames after full delivery", got)
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}

	t.Logf("%s; retries=%d reconnects=%d trips=%d probes=%d shed=%d replayed=%d",
		inj, cliMet.Retries.Value(), cliMet.Reconnects.Value(),
		cliMet.BreakerTrips.Value(), cliMet.BreakerProbes.Value(),
		srvMet.ShedDegraded.Value(), rec.Replayed)
	if inj.Injected() == 0 {
		t.Fatal("the fault injector never fired; the soak proves nothing")
	}

	stats, err := st2.SensorStats("soak-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != nFrames {
		t.Errorf("station holds %d transmissions, want exactly %d (exactly-once)", stats.Transmissions, nFrames)
	}
	if stats.Restarts != 0 {
		t.Errorf("outbox replay or reconnect misread as a sensor reboot: %d restarts", stats.Restarts)
	}
	gotHist, err := st2.History("soak-node", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotHist) != len(wantHist) {
		t.Fatalf("history length %d, want %d", len(gotHist), len(wantHist))
	}
	for i := range gotHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("history diverges from the fault-free reference at %d: %v != %v",
				i, gotHist[i], wantHist[i])
		}
	}
}
