// Query-serving benchmark suite (PR 9): measures the station's read path
// under concurrency — hot in-memory aggregates, cold archive-backed range
// reads issued by many parallel readers, and a mixed workload where
// queries compete with live ingest. `make query-bench` runs it and writes
// BENCH_pr9_query.json with the speedup over the committed pre-PR
// baseline (BENCH_pr9_query_baseline.json); the acceptance bar is the
// mixed/cold numbers, where the old station-wide RWMutex serialised every
// cold segment decode and stalled ingest behind readers.
package sbr

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/segstore"
	"sbr/internal/station"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// queryBenchConfig keeps the per-frame encode cheap so benchmark setup is
// dominated by the read path under test, not by compression.
func queryBenchConfig() core.Config {
	return core.Config{TotalBand: 8, MBase: 8, Metric: metrics.SSE}
}

// queryBenchFrames encodes n deterministic frames of batchLen samples.
// phase shifts the signal so different generations of frames differ on the
// wire (a repeated identical seq-0 frame would be deduplicated as a
// retransmission instead of accepted as a sensor reboot).
func queryBenchFrames(b *testing.B, cfg core.Config, n, batchLen int, phase float64) [][]byte {
	b.Helper()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	frames := make([][]byte, 0, n)
	for k := 0; k < n; k++ {
		row := make(timeseries.Series, batchLen)
		for i := range row {
			row[i] = 2*math.Sin(float64(k*batchLen+i)/5+phase) + phase
		}
		tr, err := comp.Encode([]timeseries.Series{row})
		if err != nil {
			b.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

func feedBenchFrames(b *testing.B, st *station.Station, id string, frames [][]byte) {
	b.Helper()
	for i, frame := range frames {
		if err := st.ReceiveFrame(id, frame); err != nil {
			b.Fatalf("frame %d: %v", i, err)
		}
	}
}

// newQueryBenchStation builds an archive-backed station: memChunks bounds
// the in-memory window, segChunks the records per sealed segment, cacheSegs
// the decoded-segment cache. NoSync keeps ingest off the fsync path so the
// benchmarks measure locking and decoding, not disk flushes.
func newQueryBenchStation(b *testing.B, cfg core.Config, memChunks, segChunks, cacheSegs int) (*station.Station, *segstore.Store) {
	b.Helper()
	st, err := station.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	store, err := segstore.Open(segstore.Options{
		Dir:           b.TempDir(),
		Config:        cfg,
		SegmentChunks: segChunks,
		CacheSegments: cacheSegs,
		NoSync:        true,
	})
	if err != nil {
		b.Fatal(err)
	}
	st.SetArchive(store, memChunks)
	return st, store
}

// BenchmarkQueryHot measures aggregate queries answered entirely from the
// in-memory window and the hierarchical index, issued by 8 concurrent
// readers: the no-archive fast path whose cost is the read-lock discipline
// plus O(log n) summary merges.
func BenchmarkQueryHot(b *testing.B) {
	const (
		chunks   = 256
		batchLen = 32
		total    = chunks * batchLen
	)
	cfg := queryBenchConfig()
	st, err := station.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	feedBenchFrames(b, st, "hot", queryBenchFrames(b, cfg, chunks, batchLen, 0))

	var ctr atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			// Ragged edges on both sides so each query mixes index merges
			// with exact sub-chunk scans.
			from := (i * 37) % (total / 2)
			to := total - 1 - (i*53)%(total/3)
			if _, _, err := st.AggregateWithBound("hot", 0, from, to, station.AggAvg); err != nil {
				b.Fatal(err)
			}
			if _, err := st.At("hot", 0, (i*91)%total); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryColdParallel measures range reads over archived history
// under 8 concurrent readers. The per-reader spans rotate through the
// sealed segments in loose lockstep (a shared counter), the dashboard
// refresh pattern: concurrent readers keep missing the same segment at
// the same moment, so a read path that deduplicates and parallelises
// segment decodes collapses the repeated work.
func BenchmarkQueryColdParallel(b *testing.B) {
	const (
		chunks    = 128
		batchLen  = 32
		segChunks = 16
		memChunks = 8
		cacheSegs = 2
	)
	cfg := queryBenchConfig()
	st, store := newQueryBenchStation(b, cfg, memChunks, segChunks, cacheSegs)
	defer store.Close()
	feedBenchFrames(b, st, "cold", queryBenchFrames(b, cfg, chunks, batchLen, 0))

	coldChunks := chunks - memChunks // [0, coldChunks) served from the archive
	segs := coldChunks / segChunks
	var ctr atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			seg := (i / 8) % segs // 8 consecutive ops target the same segment
			from := seg * segChunks * batchLen
			to := from + 2*segChunks*batchLen // span two segments
			if to > coldChunks*batchLen {
				to = coldChunks * batchLen
			}
			out, err := st.Range("cold", 0, from, to)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != to-from {
				b.Fatalf("range returned %d samples, want %d", len(out), to-from)
			}
		}
	})
}

// BenchmarkQueryMixedIngest is the acceptance workload: 8 concurrent
// readers alternating archive-backed range reads and ragged-edge index
// aggregates on one sensor while a writer ingests a live stream into
// another at a fixed offered rate (one frame per frameInterval — open
// loop, so both sides of a comparison absorb the same ingest work and
// ns/op isolates what the locking discipline costs the readers). The
// decoded-segment cache covers the reader's cold working set — the
// dashboard-refresh pattern — so the op cost is lock discipline and
// summary merging, not segment codec throughput (BenchmarkQueryColdParallel
// owns the decode-bound case). ns/op is the query cost under ingest
// pressure; ingest-p99-ns reports the writer's tail latency under reader
// pressure — the reader-blocks-writer number the per-sensor read path is
// meant to fix.
func BenchmarkQueryMixedIngest(b *testing.B) {
	const (
		chunks        = 128
		batchLen      = 32
		segChunks     = 16
		memChunks     = 8
		cacheSegs     = 8
		genFrames     = 512
		frameInterval = 500 * time.Microsecond
	)
	cfg := queryBenchConfig()
	st, store := newQueryBenchStation(b, cfg, memChunks, segChunks, cacheSegs)
	defer store.Close()
	feedBenchFrames(b, st, "r", queryBenchFrames(b, cfg, chunks, batchLen, 0))

	// Two generations of writer frames: when the stream wraps, the next
	// seq-0 frame differs on the wire and is accepted as a sensor reboot
	// instead of deduplicated as a retransmission.
	gens := [][][]byte{
		queryBenchFrames(b, cfg, genFrames, batchLen, 0.25),
		queryBenchFrames(b, cfg, genFrames, batchLen, 0.75),
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ingestNs []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := time.Now()
		for gen := 0; ; gen++ {
			for _, frame := range gens[gen%len(gens)] {
				// Open-loop arrivals: the deadline advances by the interval
				// regardless of how long the last receive took, so a slow
				// station faces a catch-up burst instead of a politely
				// self-throttling writer.
				next = next.Add(frameInterval)
				if d := time.Until(next); d > 0 {
					select {
					case <-stop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				t0 := time.Now()
				if err := st.ReceiveFrame("w", frame); err != nil {
					b.Errorf("ingest: %v", err)
					return
				}
				ingestNs = append(ingestNs, float64(time.Since(t0).Nanoseconds()))
			}
		}
	}()

	coldChunks := chunks - memChunks
	segs := coldChunks / segChunks
	total := chunks * batchLen
	var ctr atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			if i%2 == 0 {
				seg := (i / 8) % segs
				from := seg * segChunks * batchLen
				to := from + segChunks*batchLen
				if _, err := st.Range("r", 0, from, to); err != nil {
					b.Fatal(err)
				}
			} else {
				from := (i * 37) % (total / 2)
				to := total - 1 - (i*53)%(total/3)
				if _, _, err := st.AggregateWithBound("r", 0, from, to, station.AggSum); err != nil {
					b.Fatal(err)
				}
			}
			// A served query returns to the transport for the next request —
			// a scheduling point. Without it, on a single-proc run the spin
			// loop holds the processor for whole preemption quanta and the
			// paced writer's latency measures the Go scheduler, not the
			// station.
			runtime.Gosched()
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	if len(ingestNs) > 0 {
		sort.Float64s(ingestNs)
		b.ReportMetric(percentile(ingestNs, 0.99), "ingest-p99-ns")
		b.ReportMetric(percentile(ingestNs, 0.50), "ingest-p50-ns")
		b.ReportMetric(float64(len(ingestNs)), "ingest-frames")
	}
}

// percentile reads the q-quantile off an ascending-sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
