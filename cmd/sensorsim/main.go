// Command sensorsim runs the end-to-end sensor-network simulation of
// Section 3: a field of sensors sampling weather-like quantities, batching
// them, compressing each full buffer with SBR, and routing the frames over
// a multi-hop tree to the base station — with full energy accounting under
// the paper's radio/CPU cost model (one transmitted bit ≈ 1000 CPU
// instructions). It reports the routing tree, per-node energy, and the
// bandwidth/energy savings over a full-resolution feed.
//
// With -station set, every frame the simulated base station accepts is
// also streamed to a running stationd over the fault-tolerant transport
// (per-node reliable clients: connect timeouts, backoff, reconnect,
// retransmission), so the simulation doubles as a live traffic generator:
//
//	stationd  -addr 127.0.0.1:7070 -band 76 -mbase 96 &
//	sensorsim -station 127.0.0.1:7070
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sbr/internal/aggregate"
	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/obs"
	"sbr/internal/obs/hist"
	"sbr/internal/obs/trace"
	"sbr/internal/outbox"
	"sbr/internal/sensornet"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 9, "number of sensor nodes (placed on a grid)")
		rounds   = flag.Int("rounds", 1024, "sampling rounds to simulate")
		buffer   = flag.Int("buffer", 256, "samples per quantity per transmission batch")
		ratio    = flag.Float64("ratio", 0.10, "compression ratio")
		rrange   = flag.Float64("range", 30.0, "radio range")
		seed     = flag.Int64("seed", 42, "simulation seed")
		adaptive = flag.Bool("adaptive", false, "use the Section 4.4 adaptive schedule (full SBR only when needed)")
		uplink   = flag.String("station", "", "stationd address to stream every frame to over the reliable transport (empty: simulate only)")
		traceN   = flag.Int("trace-sample", 0, "sample 1 in N encoded frames for end-to-end tracing (0: tracing disabled)")
		outDir   = flag.String("outbox", "", "directory for per-node durable outboxes: frames are fsynced before first transmit and replayed on restart (empty: memory only)")
		brkN     = flag.Int("breaker-threshold", 0, "trip the uplink circuit breaker open after this many consecutive transport failures (0: disabled)")
		brkCool  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before a half-open probe")
		selfmon  = flag.Bool("selfmon", true, "record the run's own metrics into the SBR-compressed self-history and print an end-of-run summary")
		selfIv   = flag.Duration("selfmon-interval", 100*time.Millisecond, "self-history sampling interval")
	)
	flag.Parse()

	logger := obs.Component(obs.NewLogger(os.Stderr, slog.LevelInfo), "sensorsim")
	reg := obs.NewRegistry()
	start := time.Now()

	const quantities = 3 // temperature, humidity, light per node
	n := quantities * *buffer
	cfg := core.Config{
		TotalBand: int(*ratio * float64(n)),
		MBase:     n / 8,
		Metric:    metrics.SSE,
	}
	net, err := sensornet.NewNetwork(cfg, sensornet.DefaultEnergyModel(), *rrange, *buffer)
	if err != nil {
		fatal(err)
	}
	if *adaptive {
		net.Adaptive = &core.AdaptivePolicy{MinFullRuns: 2, DegradeFactor: 1.5, Every: 8}
	}

	// Place nodes on a grid fanning out from the base station at (0,0).
	side := int(math.Ceil(math.Sqrt(float64(*nodes))))
	for k := 0; k < *nodes; k++ {
		x := float64(k%side+1) * 20
		y := float64(k/side+1) * 20
		id := fmt.Sprintf("node-%02d", k)
		if err := net.AddNode(id, x, y, weatherSource(*seed+int64(k))); err != nil {
			fatal(err)
		}
	}
	if err := net.Build(); err != nil {
		fatal(err)
	}
	// The whole network feeds one obs registry: the base station's
	// decode/query metrics plus every node compressor's encode fast-path
	// counters (scan-cache hits, incrementally scanned tail shifts), so the
	// final summary and any rejection counts come from one telemetry source.
	net.Instrument(reg)

	// The self-monitoring sampler dogfoods the paper's own compressor on
	// that registry: every counter and gauge above becomes an
	// SBR-compressed time series, summarised (with sparklines) at the end.
	var sampler *hist.Sampler
	if *selfmon {
		sampler = hist.NewSampler(reg, hist.Options{Interval: *selfIv})
		sampler.Start()
	}

	// With sampling on, 1 in N frames is born traced at encode time; the
	// trace context rides the wire (protocol v3) and the station's spans
	// land in the same recorder, so the summary can show where time went.
	var tracer *trace.Recorder
	if *traceN > 0 {
		tracer = trace.NewRecorder(trace.Options{SampleEvery: *traceN})
		net.Trace(tracer)
	}

	// With an uplink, every accepted frame is mirrored to a real stationd
	// through one reliable client per node: the transport retries, backs
	// off and reconnects on its own, and its telemetry lands in the same
	// registry as the simulation's.
	var netMet *netio.Metrics
	var obMet *outbox.Metrics
	clients := make(map[string]*netio.ReliableClient)
	outboxes := make(map[string]*outbox.Outbox)
	if *uplink != "" {
		netMet = netio.NewMetrics(reg)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			obMet = outbox.NewMetrics(reg)
		}
		net.Deliver = func(id string, frame []byte) error {
			rc, ok := clients[id]
			if !ok {
				var ob *outbox.Outbox
				if *outDir != "" {
					var err error
					ob, err = outbox.Open(filepath.Join(*outDir, id+".outbox"),
						outbox.Options{Sensor: id, Metrics: obMet})
					if err != nil {
						return err
					}
					outboxes[id] = ob
				}
				var err error
				rc, err = netio.NewReliable(*uplink, id, netio.ReliableOptions{
					Metrics:          netMet,
					Logger:           logger,
					Tracer:           tracer,
					Outbox:           ob,
					BreakerThreshold: *brkN,
					BreakerCooldown:  *brkCool,
				})
				if err != nil {
					return err
				}
				clients[id] = rc
			}
			return rc.Send(frame)
		}
	}

	fmt.Println("Routing tree (hop-count shortest paths to the base station):")
	for _, line := range net.Describe() {
		fmt.Println(" ", line)
	}

	rep, err := net.Run(*rounds)
	if err != nil {
		fatal(err)
	}
	if *uplink != "" {
		// Drain the uplink: every frame acknowledged before reporting. A
		// node whose flush cannot complete leaves a residue of undelivered
		// frames; the run then reports it per node and exits nonzero so
		// scripted runs detect the loss (or, with -outbox, the deferral).
		residue := make(map[string]*netio.PendingError)
		for id, rc := range clients {
			err := rc.Close()
			var pe *netio.PendingError
			switch {
			case err == nil:
			case errors.As(err, &pe):
				residue[id] = pe
			default:
				fatal(fmt.Errorf("uplink %s: %w", id, err))
			}
		}
		for id, ob := range outboxes {
			if err := ob.Close(); err != nil {
				fatal(fmt.Errorf("outbox %s: %w", id, err))
			}
		}
		if len(residue) > 0 {
			fmt.Fprintf(os.Stderr, "\nsensorsim: run ended with undelivered frames:\n")
			ids := make([]string, 0, len(residue))
			for id := range residue {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			total := 0
			for _, id := range ids {
				pe := residue[id]
				fate := "LOST (no -outbox)"
				if pe.Durable {
					fate = "durable in " + filepath.Join(*outDir, id+".outbox")
				}
				fmt.Fprintf(os.Stderr, "  %-9s %4d frames pending — %s\n", id, pe.Pending, fate)
				total += pe.Pending
			}
			fmt.Fprintf(os.Stderr, "sensorsim: %d frames undelivered across %d nodes\n", total, len(ids))
			os.Exit(1)
		}
		fmt.Printf("\nUplink to %s: %d frames delivered, %d retries, %d reconnects\n",
			*uplink, rep.Transmissions, netMet.Retries.Value(), netMet.Reconnects.Value())
	}

	fmt.Printf("\nSimulated %d rounds, %d transmissions delivered\n", rep.Rounds, rep.Transmissions)
	fmt.Printf("Traffic at base station: %d bytes compressed vs %d bytes raw (ratio %.3f)\n",
		rep.BytesToBase, rep.RawBytes, rep.CompressionRatio())
	fmt.Printf("Network energy: %.3g nJ compressed vs %.3g nJ raw feed — %.1fx saving\n",
		rep.TotalEnergy, rep.RawEnergy, rep.EnergySavingFactor())

	fmt.Println("\nPer-node energy (nJ):")
	ids := net.NodeIDs()
	sort.Strings(ids)
	fmt.Printf("  %-9s %12s %12s %12s %12s  depth\n", "node", "tx", "rx", "cpu", "total")
	for _, id := range ids {
		e := rep.PerNode[id]
		fmt.Printf("  %-9s %12.3g %12.3g %12.3g %12.3g  %d\n",
			id, e.Tx, e.Rx, e.CPU, e.Total(), net.Node(id).Depth())
	}

	// Show that the base station can answer historical queries.
	st := net.Station()
	first := ids[0]
	if avg, err := st.Aggregate(first, 0, 0, *buffer, 0); err == nil {
		fmt.Printf("\nHistorical query: avg(%s, quantity 0, first batch) = %.3f\n", first, avg)
	}

	// Contrast with TAG-style in-network aggregation (Section 1): far fewer
	// messages, but only the registered statistic survives.
	agg, err := net.RunAggregation(*rounds, 0, aggregate.Avg)
	if err != nil {
		fatal(err)
	}
	rawMessages := 0
	for _, id := range ids {
		rawMessages += net.Node(id).Depth() * *rounds
	}
	fmt.Printf("\nIn-network aggregation of quantity 0 over the same %d rounds:\n", *rounds)
	fmt.Printf("  messages: %d (raw per-round forwarding would need %d)\n", agg.Messages, rawMessages)
	fmt.Printf("  bytes: %d, energy: %.3g nJ\n", agg.Bytes, agg.TotalEnergy)
	fmt.Printf("  network-wide avg over the run: %.3f — but no historical detail survives;\n", agg.Results.Mean())
	fmt.Println("  the SBR feed above answers arbitrary historical queries instead.")

	// Latency quantiles from every histogram the run populated — the same
	// interpolated p50/p95/p99 stationd serves on /v1/stats.
	if lat := reg.HistogramSummaries(); len(lat) > 0 {
		fmt.Println("\nLatency quantiles (seconds):")
		for _, h := range lat {
			fmt.Printf("  %-40s n=%-8d p50=%.3g p95=%.3g p99=%.3g\n",
				h.Name, h.Count, h.P50, h.P95, h.P99)
		}
	}

	// Slowest traced frame per pipeline stage, when tracing was sampled.
	if tracer != nil {
		if ex := tracer.Exemplars(); len(ex) > 0 {
			stages := make([]string, 0, len(ex))
			for stage := range ex {
				stages = append(stages, stage)
			}
			sort.Strings(stages)
			fmt.Printf("\nSlow-path exemplars (%d traced frames):\n", len(tracer.Recent(0)))
			for _, stage := range stages {
				tr := ex[stage][0]
				fmt.Printf("  %-16s worst trace %s (%s)\n", stage, tr.TraceID(), tr.Sensor())
			}
		}
	}

	// The run's own telemetry, replayed from the SBR-compressed
	// self-history: proof the operational plane eats its own dog food.
	if sampler != nil {
		sampler.Stop()
		sampler.Tick() // capture the final state as one last sample
		printSelfHistory(sampler, time.Since(start))
	}

	// Final structured summary, from the same registry the station fed.
	v := reg.Values()
	reg.Gauge("sbr_sensorsim_wall_seconds", "Wall-clock time of the whole simulation.").
		Set(time.Since(start).Seconds())
	logger.Info("simulation complete",
		"frames_sent", rep.Transmissions,
		"frames_accepted", int(v["sbr_station_transmissions_total"]),
		"frames_rejected", int(v["sbr_station_rejects_total"]),
		"bytes_to_base", rep.BytesToBase,
		"raw_bytes", rep.RawBytes,
		"values", int(v["sbr_station_values_total"]),
		"base_inserts", int(v["sbr_core_base_inserts_total"]),
		"encodes", int(v["sbr_encode_total"]),
		"search_evals", int(v["sbr_encode_search_evals_total"]),
		"scan_cache_hits", int(v["sbr_encode_cache_hits_total"]),
		"scan_cache_misses", int(v["sbr_encode_cache_misses_total"]),
		"tail_shifts", int(v["sbr_encode_tail_shifts_total"]),
		"wall", time.Since(start).Round(time.Millisecond).String(),
	)
}

// printSelfHistory summarises the sampler's store — compression totals
// plus a sparkline per busiest series — entirely from windowed queries,
// the same path /debug/metrics/history serves on stationd.
func printSelfHistory(s *hist.Sampler, ran time.Duration) {
	infos := s.Series()
	if len(infos) == 0 {
		return
	}
	var samples, hot int64
	var windows, compressed int
	for _, in := range infos {
		samples += in.Samples
		hot += int64(in.HotSamples)
		windows += in.Windows
		compressed += in.CompressedValues
	}
	fmt.Printf("\nSelf-monitoring history (%d series, sampled every %s, error bound %.3g):\n",
		len(infos), s.Interval(), s.ErrorBound())
	cold := samples - hot
	if cold > 0 {
		fmt.Printf("  cold store: %d windows, %d SBR values for %d samples (%.1fx)\n",
			windows, compressed, cold, float64(cold)/float64(max(1, compressed)))
	} else {
		fmt.Printf("  %d samples, all still in the hot ring (run shorter than a window)\n", samples)
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Samples != infos[j].Samples {
			return infos[i].Samples > infos[j].Samples
		}
		return infos[i].Name < infos[j].Name
	})
	if len(infos) > 8 {
		infos = infos[:8]
	}
	window := ran + s.Interval()
	for _, in := range infos {
		pts, _, err := s.RangeOver(in.Name, window, window/48)
		if err != nil || len(pts) == 0 {
			continue
		}
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.V
		}
		last := pts[len(pts)-1]
		fmt.Printf("  %-44s %s  last=%.4g ±%.2g\n", in.Name, hist.Sparkline(vals), last.V, last.Err)
	}
}

// weatherSource generates a 3-quantity sample stream: diurnal temperature,
// anti-correlated humidity, and a light level, with AR(1)-smooth noise.
func weatherSource(seed int64) sensornet.SampleSource {
	rng := rand.New(rand.NewSource(seed))
	var tn, hn float64
	return func(round int) []float64 {
		h := float64(round) * 0.25 // 15-minute cadence
		diurnal := math.Sin(2 * math.Pi * (h - 9) / 24)
		tn = 0.95*tn + 0.3*rng.NormFloat64()
		hn = 0.95*hn + 0.5*rng.NormFloat64()
		temp := 15 + 8*diurnal + tn
		hum := 70 - 20*diurnal + hn
		light := math.Max(0, 800*math.Sin(2*math.Pi*(h-6)/24)) + 5*rng.Float64()
		return []float64{temp, hum, light}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sensorsim:", err)
	os.Exit(1)
}
