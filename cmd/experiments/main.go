// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 5). Each run prints the same rows or series the paper
// reports; absolute values differ (synthetic datasets, modern hardware) but
// the comparisons are the reproduction target.
//
// Usage:
//
//	experiments -run table2          # one experiment
//	experiments -run all             # everything
//	experiments -run table3 -quick   # reduced scale, seconds instead of minutes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sbr/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment to run: table2|table3|table4|table5|table6|figure5|figure6|timing|ablations|netflow|all")
		quick  = flag.Bool("quick", false, "reduced dataset sizes and ratio sweep")
		csvDir = flag.String("csv", "", "also write machine-readable CSVs of the tables/figures into this directory")
		seed   = flag.Int64("seed", 42, "dataset generator seed")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "creating CSV dir: %v\n", err)
			os.Exit(1)
		}
		csvOut = *csvDir
	}
	runners := map[string]func(experiments.Config) error{
		"table2":    runTable2,
		"table3":    runTable3,
		"table4":    runTable4,
		"table5":    runTable5,
		"table6":    runTable6,
		"figure5":   runFigure5,
		"figure6":   runFigure6,
		"timing":    runTiming,
		"ablations": runAblations,
		"netflow":   runNetflow,
	}
	order := []string{"table2", "table3", "table4", "table5", "table6", "figure5", "figure6", "timing", "ablations", "netflow"}

	var selected []string
	if *run == "all" {
		selected = order
	} else if _, ok := runners[*run]; ok {
		selected = []string{*run}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := runners[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// csvOut, when non-empty, receives machine-readable copies of results.
var csvOut string

// exportCSV writes one result file into the -csv directory, if enabled.
func exportCSV(name string, write func(io.Writer) error) error {
	if csvOut == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvOut, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func runTable2(cfg experiments.Config) error {
	weather, stock, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRatioTable(weather))
	fmt.Println()
	fmt.Print(experiments.FormatRatioTable(stock))
	if err := exportCSV("table2_weather.csv", weather.WriteCSV); err != nil {
		return err
	}
	return exportCSV("table2_stock.csv", stock.WriteCSV)
}

func runTable3(cfg experiments.Config) error {
	mse, rel, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRatioTable(mse))
	fmt.Println()
	fmt.Print(experiments.FormatRatioTable(rel))
	if err := exportCSV("table3_mse.csv", mse.WriteCSV); err != nil {
		return err
	}
	return exportCSV("table3_rel.csv", rel.WriteCSV)
}

func runTable4(cfg experiments.Config) error {
	mse, rel, err := experiments.Table4(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRatioTable(mse))
	fmt.Println()
	fmt.Print(experiments.FormatRatioTable(rel))
	if err := exportCSV("table4_mse.csv", mse.WriteCSV); err != nil {
		return err
	}
	return exportCSV("table4_rel.csv", rel.WriteCSV)
}

func runTable5(cfg experiments.Config) error {
	res, err := experiments.Table5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable5(res))
	return nil
}

func runTable6(cfg experiments.Config) error {
	res, err := experiments.Table6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable6(res))
	return nil
}

func runFigure5(cfg experiments.Config) error {
	res, err := experiments.Figure5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure5(res))
	return exportCSV("figure5.csv", res.WriteCSV)
}

func runFigure6(cfg experiments.Config) error {
	res, err := experiments.Figure6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure6(res))
	return exportCSV("figure6.csv", res.WriteCSV)
}

func runAblations(cfg experiments.Config) error {
	res, err := experiments.Ablations(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatAblations(res))
	return nil
}

func runNetflow(cfg experiments.Config) error {
	res, err := experiments.Netflow(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatNetflow(res))
	return nil
}

func runTiming(cfg experiments.Config) error {
	res, err := experiments.Timing(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTiming(res))
	return nil
}
