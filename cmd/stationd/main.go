// Command stationd runs a standalone base station: it listens for sensor
// connections over TCP, decodes and logs every transmission (per-sensor
// append-only logs on disk, as in Section 3.2), and periodically prints
// reception statistics. Pair it with sensors built on internal/sensor and
// internal/netio, or try it against cmd/sensorsim's source model.
//
//	stationd -addr 127.0.0.1:7070 -logdir /tmp/sbr-logs -band 150 -mbase 64
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/station"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		logDir = flag.String("logdir", "", "directory for per-sensor logs (empty: memory only)")
		band   = flag.Int("band", 150, "TotalBand the sensors were configured with")
		mbase  = flag.Int("mbase", 64, "MBase the sensors were configured with")
		every  = flag.Duration("report", 10*time.Second, "statistics reporting interval")
	)
	flag.Parse()

	cfg := core.Config{TotalBand: *band, MBase: *mbase, Metric: metrics.SSE}
	st, err := station.New(cfg)
	if err != nil {
		fatal(err)
	}
	var store *station.LogStore
	if *logDir != "" {
		store, err = station.NewLogStore(*logDir)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	srv, err := netio.Serve(st, *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stationd: listening on %s (TotalBand=%d MBase=%d)\n", srv.Addr(), *band, *mbase)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()

	for {
		select {
		case <-ticker.C:
			report(st)
		case <-stop:
			fmt.Println("\nstationd: shutting down")
			if err := srv.Close(); err != nil {
				fatal(err)
			}
			report(st)
			return
		}
	}
}

func report(st *station.Station) {
	ids := st.Sensors()
	if len(ids) == 0 {
		fmt.Println("stationd: no sensors yet")
		return
	}
	fmt.Printf("stationd: %d sensors\n", len(ids))
	for _, id := range ids {
		stats, err := st.SensorStats(id)
		if err != nil {
			continue
		}
		fmt.Printf("  %-16s %4d transmissions, %d quantities × %d samples each, %d values\n",
			id, stats.Transmissions, stats.Quantities, stats.SamplesPerRow, stats.Values)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stationd:", err)
	os.Exit(1)
}
