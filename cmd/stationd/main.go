// Command stationd runs a standalone base station: it listens for sensor
// connections over TCP, decodes and logs every transmission (per-sensor
// append-only logs on disk, as in Section 3.2), answers historical queries
// over HTTP/JSON, and periodically prints reception statistics. Pair it
// with sensors built on internal/sensor and internal/netio, or try it
// against cmd/sensorsim's source model.
//
//	stationd -addr 127.0.0.1:7070 -http 127.0.0.1:8080 -logdir /tmp/sbr-logs -band 150 -mbase 64
//
// With -http set, the approximate-query engine is exposed while frames
// keep arriving: point, range, aggregate (answered from the hierarchical
// aggregate index with a deterministic error bound), downsample and
// exceedance queries — see internal/httpapi for the endpoints. On SIGINT
// or SIGTERM the daemon stops accepting sensors, drains the HTTP server,
// syncs the on-disk logs and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sbr/internal/core"
	"sbr/internal/httpapi"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/station"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "TCP listen address for sensor connections")
		httpAddr = flag.String("http", "", "HTTP query-API listen address (empty: disabled)")
		logDir   = flag.String("logdir", "", "directory for per-sensor logs (empty: memory only)")
		band     = flag.Int("band", 150, "TotalBand the sensors were configured with")
		mbase    = flag.Int("mbase", 64, "MBase the sensors were configured with")
		every    = flag.Duration("report", 10*time.Second, "statistics reporting interval (0: disabled)")
		cacheSz  = flag.Int("cache", httpapi.DefaultCacheEntries, "query-API history cache entries")
	)
	flag.Parse()

	cfg := core.Config{TotalBand: *band, MBase: *mbase, Metric: metrics.SSE}
	st, err := station.New(cfg)
	if err != nil {
		fatal(err)
	}

	var store *station.LogStore
	var observer netio.FrameObserver
	if *logDir != "" {
		store, err = station.NewLogStore(*logDir)
		if err != nil {
			fatal(err)
		}
		observer = func(id string, frame []byte) {
			if err := store.Append(id, frame); err != nil {
				fmt.Fprintln(os.Stderr, "stationd: log append:", err)
			}
		}
	}

	srv, err := netio.ServeObserved(st, *addr, observer)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stationd: listening on %s (TotalBand=%d MBase=%d)\n", srv.Addr(), *band, *mbase)

	var httpSrv *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			srv.Close() //nolint:errcheck — exiting anyway
			fatal(err)
		}
		httpSrv = &http.Server{Handler: httpapi.New(st, *cacheSz)}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "stationd: http:", err)
			}
		}()
		fmt.Printf("stationd: query API on http://%s/v1/\n", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *every > 0 {
		ticker := time.NewTicker(*every)
		defer ticker.Stop()
		tick = ticker.C
	}

	for {
		select {
		case <-tick:
			report(st)
		case <-stop:
			shutdown(st, srv, httpSrv, store)
			return
		}
	}
}

// shutdown tears the daemon down in dependency order: stop ingesting (and
// with it the log appends), drain in-flight HTTP queries, then sync and
// close the on-disk logs so an interrupt cannot lose buffered frames.
func shutdown(st *station.Station, srv *netio.Server, httpSrv *http.Server, store *station.LogStore) {
	fmt.Println("\nstationd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "stationd: closing sensor server:", err)
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "stationd: draining http server:", err)
		}
		cancel()
	}
	if store != nil {
		if err := store.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "stationd: syncing logs:", err)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "stationd: closing logs:", err)
		}
	}
	report(st)
}

func report(st *station.Station) {
	ids := st.Sensors()
	if len(ids) == 0 {
		fmt.Println("stationd: no sensors yet")
		return
	}
	fmt.Printf("stationd: %d sensors\n", len(ids))
	for _, id := range ids {
		stats, err := st.SensorStats(id)
		if err != nil {
			continue
		}
		fmt.Printf("  %-16s %4d transmissions, %d quantities × %d samples each, %d values\n",
			id, stats.Transmissions, stats.Quantities, stats.SamplesPerRow, stats.Values)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stationd:", err)
	os.Exit(1)
}
