// Command stationd runs a standalone base station: it listens for sensor
// connections over TCP, decodes and logs every transmission (per-sensor
// append-only logs on disk, as in Section 3.2), answers historical queries
// over HTTP/JSON, and periodically logs a structured reception report.
// Pair it with sensors built on internal/sensor and internal/netio, or try
// it against cmd/sensorsim's source model.
//
//	stationd -addr 127.0.0.1:7070 -http 127.0.0.1:8080 -debug 127.0.0.1:9090 \
//	         -datadir /var/lib/sbr -band 150 -mbase 64
//
// With -datadir set, the daemon runs on the persistent segment store:
// every accepted transmission is archived in its compressed wire form
// before it is acknowledged, the in-memory history is a bounded window
// (-mem-chunks) with older chunks served cold from sealed segments, the
// station checkpoints itself periodically (-checkpoint), and a restart
// recovers from the newest checkpoint plus a bounded tail replay instead
// of replaying history from t=0. -retention-age / -retention-bytes bound
// the archive. The legacy raw-frame WAL (-logdir, full replay on boot)
// remains available but is mutually exclusive with -datadir.
//
// With -http set, the approximate-query engine is exposed while frames
// keep arriving: point, range, aggregate (answered from the hierarchical
// aggregate index with a deterministic error bound), downsample,
// exceedance and stats queries — see internal/httpapi for the endpoints.
//
// With -debug set, the admin plane is exposed on a separate listener so
// operational traffic never competes with queries:
//
//	GET /healthz                 — liveness: 200 while the process serves HTTP
//	GET /readyz                  — readiness: 503 while draining, archive
//	                               degraded, over the shed watermarks, or a
//	                               page-severity alert is firing; 200 otherwise
//	GET /debug/metrics           — Prometheus text exposition of the obs registry
//	GET /debug/vars              — the same registry as an expvar-style JSON dump
//	GET /debug/metrics/history   — windowed queries over the station's own
//	                               metrics, stored as SBR-compressed history
//	                               (-selfmon*; series/window/step/agg params,
//	                               JSON or format=spark sparklines)
//	GET /debug/alerts            — SLO alert rules and their firing state
//	                               (-alert-rules; multi-window burn rates)
//	GET /debug/traces            — recent end-to-end frame traces (-trace-sample)
//	GET /debug/pprof/…           — the standard net/http/pprof profiles
//
// Self-monitoring (-selfmon, on by default) dogfoods the paper's
// algorithm on the station's own telemetry: every registered series is
// sampled each -selfmon-interval into hot ring buffers whose evicted
// windows are SBR-compressed within a -selfmon-error relative error
// bound, so every windowed answer carries an error bar. The alert engine
// evaluates its rules after every sample; a firing page-severity rule
// fails /readyz.
//
// -mutexprofile N and -blockprofile NS turn on runtime lock-contention
// sampling (1 in N contended mutex events; blocking events >= NS ns), so
// /debug/pprof/mutex and /debug/pprof/block carry real data when chasing
// a read-path contention regression in production.
//
// Every daemon event and the periodic report go through the structured
// logger (internal/obs conventions); -v raises it to debug level. On
// SIGINT or SIGTERM the daemon stops accepting sensors, drains the HTTP
// servers, syncs the on-disk logs and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sbr/internal/core"
	"sbr/internal/httpapi"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/obs"
	"sbr/internal/obs/hist"
	"sbr/internal/obs/trace"
	"sbr/internal/segstore"
	"sbr/internal/station"
	"sbr/internal/wire"
)

// version identifies the build in sbr_build_info; release builds override
// it via -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "TCP listen address for sensor connections")
		httpAddr   = flag.String("http", "", "HTTP query-API listen address (empty: disabled)")
		debugAddr  = flag.String("debug", "", "admin-plane listen address for /debug/metrics, /debug/vars, /debug/pprof (empty: disabled)")
		logDir     = flag.String("logdir", "", "directory for legacy raw-frame logs (empty: disabled; exclusive with -datadir)")
		dataDir    = flag.String("datadir", "", "persistent segment-store directory (empty: memory only)")
		band       = flag.Int("band", 150, "TotalBand the sensors were configured with")
		mbase      = flag.Int("mbase", 64, "MBase the sensors were configured with")
		every      = flag.Duration("report", 10*time.Second, "statistics reporting interval (0: disabled)")
		cacheSz    = flag.Int("history-cache", httpapi.DefaultCacheEntries, "query-API history cache entries")
		ckptEvery  = flag.Duration("checkpoint", time.Minute, "station checkpoint + retention interval with -datadir (0: only at shutdown)")
		retAge     = flag.Duration("retention-age", 0, "drop sealed segments older than this (0: keep forever)")
		retBytes   = flag.Int64("retention-bytes", 0, "archive byte budget; oldest segments dropped beyond it (0: unlimited)")
		segChunks  = flag.Int("segment-chunks", segstore.DefaultSegmentChunks, "transmissions per segment before sealing")
		memChunks  = flag.Int("mem-chunks", 256, "per-sensor in-memory chunk window with -datadir (0: unbounded)")
		verbose    = flag.Bool("v", false, "log at debug level (per-connection events)")
		maxConns   = flag.Int("max-conns", 0, "cap on concurrent sensor connections; extras are shed with a busy ack (0: unlimited)")
		shedQueue  = flag.Int("shed-queue", 0, "ingest watermark: shed arrivals while this many frames are in flight in the station (0: unlimited)")
		retryHint  = flag.Duration("retry-after", 0, "retry-after hint carried in busy acks; reliable clients floor their backoff by it (0: none)")
		idleTO     = flag.Duration("idle-timeout", 0, "close sensor connections silent this long (0: 2m default, negative: never)")
		hsTO       = flag.Duration("handshake-timeout", 0, "drop connections that stall in the handshake (0: 10s default, negative: never)")
		drainTO    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before force-closing connections")
		traceN     = flag.Int("trace-sample", 0, "sample 1 in N station-born traces; wire-propagated traces are always continued (0: tracing disabled)")
		traceCap   = flag.Int("trace-cap", 256, "completed traces retained for /debug/traces")
		selfmon    = flag.Bool("selfmon", true, "store the station's own metrics as SBR-compressed history and evaluate SLO alert rules (/debug/metrics/history, /debug/alerts)")
		selfmonIv  = flag.Duration("selfmon-interval", 5*time.Second, "self-monitoring sampling interval")
		selfmonErr = flag.Float64("selfmon-error", 0.01, "self-monitoring per-window relative error bound")
		alertRules = flag.String("alert-rules", "", "JSON alert-rule file replacing the built-in SLO rules (empty: built-ins)")
		mutexFrac  = flag.Int("mutexprofile", 0, "mutex contention profiling: sample 1 in N contended lock events for /debug/pprof/mutex (0: disabled)")
		blockNs    = flag.Int("blockprofile", 0, "blocking profiling: sample blocking events >= this many ns for /debug/pprof/block (0: disabled)")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level)
	dlog := obs.Component(logger, "stationd")
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, version, wire.VersionTraced)
	obs.RegisterRuntimeMetrics(reg)

	// Lock-contention diagnostics for the -debug pprof plane: read-path
	// regressions (a reader blocking ingest, a hot sensor lock) show up in
	// /debug/pprof/mutex and /debug/pprof/block without a rebuild.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
		dlog.Info("mutex profiling enabled", "fraction", *mutexFrac)
	}
	if *blockNs > 0 {
		runtime.SetBlockProfileRate(*blockNs)
		dlog.Info("block profiling enabled", "rate_ns", *blockNs)
	}

	cfg := core.Config{TotalBand: *band, MBase: *mbase, Metric: metrics.SSE}
	st, err := station.New(cfg)
	if err != nil {
		fatal(dlog, err)
	}
	st.Instrument(reg)

	var tracer *trace.Recorder
	if *traceN > 0 {
		tracer = trace.NewRecorder(trace.Options{
			Capacity:    *traceCap,
			SampleEvery: *traceN,
		})
		st.SetTracer(tracer)
		dlog.Info("tracing enabled", "sample_every", *traceN, "capacity", *traceCap)
	}

	if *logDir != "" && *dataDir != "" {
		fatal(dlog, errors.New("stationd: -logdir and -datadir are mutually exclusive"))
	}

	var seg *segstore.Store
	if *dataDir != "" {
		var err error
		seg, err = segstore.Open(segstore.Options{
			Dir:           *dataDir,
			Config:        cfg,
			SegmentChunks: *segChunks,
			Retention:     segstore.Retention{MaxAge: *retAge, MaxBytes: *retBytes},
		})
		if err != nil {
			fatal(dlog, err)
		}
		seg.Instrument(reg)
		st.SetArchive(seg, *memChunks)
		// Recovery before anything else: newest checkpoint + bounded tail
		// replay of the records archived since, instead of a full replay.
		rs, err := st.Recover()
		if err != nil {
			fatal(dlog, err)
		}
		ss := seg.StoreStats()
		dlog.Info("recovered station from segment store", "dir", *dataDir,
			"sensors", rs.Sensors, "from_checkpoint", rs.FromCheckpoint,
			"tail_frames_replayed", rs.Replayed,
			"segments", ss.Segments, "bytes", ss.Bytes)
	}

	var store *station.LogStore
	var observer netio.FrameObserver
	if *logDir != "" {
		// Crash recovery before anything else touches the directory: replay
		// the per-sensor frame logs into the station (truncating any torn
		// tail a previous crash left behind), so sequence state, history
		// and the aggregate index resume where the last process stopped.
		rs, err := station.Restore(st, *logDir)
		if err != nil {
			fatal(dlog, err)
		}
		if rs.Sensors > 0 || rs.TornTails > 0 {
			dlog.Info("restored station from frame logs", "dir", *logDir,
				"sensors", rs.Sensors, "frames", rs.Frames,
				"duplicates_skipped", rs.Duplicates,
				"torn_tails", rs.TornTails, "truncated_bytes", rs.TruncatedBytes)
		}
		store, err = station.NewLogStore(*logDir)
		if err != nil {
			fatal(dlog, err)
		}
		storeLog := obs.Component(logger, "logstore")
		observer = func(id string, frame []byte) {
			if err := store.Append(id, frame); err != nil {
				storeLog.Error("log append failed", "sensor", id, "err", err)
			}
		}
	}

	srv, err := netio.ServeWith(st, *addr, netio.Options{
		Observer:         observer,
		Metrics:          netio.NewMetrics(reg),
		Logger:           logger,
		Tracer:           tracer,
		MaxConns:         *maxConns,
		ShedQueueDepth:   *shedQueue,
		ArchiveDegraded:  st.ArchiveDegraded,
		RetryAfter:       *retryHint,
		IdleTimeout:      *idleTO,
		HandshakeTimeout: *hsTO,
	})
	if err != nil {
		fatal(dlog, err)
	}
	dlog.Info("listening for sensors", "addr", srv.Addr(), "band", *band, "mbase", *mbase)

	httpSrv := serveHTTP(dlog, srv, *httpAddr, "query API", httpapi.NewObserved(st, *cacheSz, reg))

	// The self-monitoring plane: a sampler feeding SBR-compressed history
	// of every registered metric, with the alert engine evaluated after
	// each tick and its page-severity verdict wired into /readyz.
	hlth := health(srv, st)
	var sampler *hist.Sampler
	var alerts *hist.Engine
	if *selfmon {
		sampler = hist.NewSampler(reg, hist.Options{
			Interval:   *selfmonIv,
			ErrorBound: *selfmonErr,
		})
		rules := hist.DefaultRules()
		if *alertRules != "" {
			rules, err = hist.LoadRules(*alertRules)
			if err != nil {
				fatal(dlog, err)
			}
		}
		alerts, err = hist.NewEngine(sampler, tracer, rules)
		if err != nil {
			fatal(dlog, err)
		}
		sampler.AfterTick(alerts.Evaluate)
		sampler.Start()
		hlth.Add(httpapi.Check{Name: "alerts", Probe: alerts.PageErr})
		dlog.Info("self-monitoring enabled", "interval", selfmonIv.String(),
			"error_bound", *selfmonErr, "rules", len(rules))
	}

	debugSrv := serveHTTP(dlog, srv, *debugAddr, "debug plane", httpapi.NewDebugMux(httpapi.DebugOptions{
		Registry: reg,
		Tracer:   tracer,
		Health:   hlth,
		History:  sampler,
		Alerts:   alerts,
	}))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *every > 0 {
		ticker := time.NewTicker(*every)
		defer ticker.Stop()
		tick = ticker.C
	}
	var ckptTick <-chan time.Time
	if seg != nil && *ckptEvery > 0 {
		ticker := time.NewTicker(*ckptEvery)
		defer ticker.Stop()
		ckptTick = ticker.C
	}

	for {
		select {
		case <-tick:
			if seg != nil {
				seg.UpdateCheckpointAge()
			}
			report(dlog, reg, st)
		case <-ckptTick:
			checkpoint(dlog, st, seg)
		case <-stop:
			if sampler != nil {
				sampler.Stop()
			}
			shutdown(dlog, reg, st, srv, httpSrv, debugSrv, store, seg, *drainTO)
			return
		}
	}
}

// checkpoint runs one periodic maintenance pass on the segment store:
// write a station checkpoint, then enforce retention (which may only now
// drop segments the new checkpoint no longer needs for tail replay).
func checkpoint(log *slog.Logger, st *station.Station, seg *segstore.Store) {
	if err := st.Checkpoint(); err != nil {
		log.Error("checkpoint failed", "err", err)
		return
	}
	removed, err := seg.EnforceRetention(time.Now())
	if err != nil {
		log.Error("retention failed", "err", err)
	} else if removed > 0 {
		log.Info("retention removed segments", "segments", removed)
	}
	seg.UpdateCheckpointAge()
}

// serveHTTP starts one HTTP listener in the background, or returns nil
// when addr is empty. Listen failures are fatal: a daemon that silently
// runs without its query API is worse than one that does not start.
func serveHTTP(log *slog.Logger, srv *netio.Server, addr, name string, h http.Handler) *http.Server {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close() //nolint:errcheck — exiting anyway
		fatal(log, err)
	}
	s := &http.Server{Handler: h}
	go func() {
		if err := s.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("http server failed", "server", name, "err", err)
		}
	}()
	log.Info("serving http", "server", name, "addr", ln.Addr().String())
	return s
}

// health assembles the readiness checks: not draining, archive not
// degraded, below the shed watermarks. These are the SAME conditions the
// transport's admission control sheds on, so /readyz going 503 predicts
// busy acks on the sensor port.
func health(srv *netio.Server, st *station.Station) *httpapi.Health {
	return httpapi.NewHealth(
		httpapi.Check{Name: "draining", Probe: func() error {
			if srv.Draining() {
				return errors.New("shutting down")
			}
			return nil
		}},
		httpapi.Check{Name: "archive", Probe: func() error {
			if st.ArchiveDegraded() {
				return errors.New("archive degraded: appends failing, serving memory only")
			}
			return nil
		}},
		httpapi.Check{Name: "admission", Probe: func() error {
			if reason := srv.OverWatermark(); reason != "" {
				return fmt.Errorf("shedding arrivals: %s watermark", reason)
			}
			return nil
		}},
	)
}

// shutdown tears the daemon down in dependency order: drain the sensor
// transport gracefully (in-flight frames finish and are acknowledged, so
// sensors do not retransmit work the station already logged), drain
// in-flight HTTP queries, then sync and close the on-disk logs so an
// interrupt cannot lose buffered frames.
func shutdown(log *slog.Logger, reg *obs.Registry, st *station.Station,
	srv *netio.Server, httpSrv, debugSrv *http.Server, store *station.LogStore,
	seg *segstore.Store, drain time.Duration) {

	log.Info("shutting down", "drain", drain.String())
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("draining sensor server", "err", err)
	}
	cancel()
	for _, s := range []*http.Server{httpSrv, debugSrv} {
		if s == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			log.Error("draining http server", "err", err)
		}
		cancel()
	}
	if store != nil {
		if err := store.Sync(); err != nil {
			log.Error("syncing logs", "err", err)
		}
		if err := store.Close(); err != nil {
			log.Error("closing logs", "err", err)
		}
	}
	if seg != nil {
		// Final checkpoint with all traffic drained, then Close seals the
		// active segments: the next boot loads the checkpoint and replays an
		// empty tail.
		if err := st.Checkpoint(); err != nil {
			log.Error("final checkpoint failed", "err", err)
		}
		if err := seg.Close(); err != nil {
			log.Error("closing segment store", "err", err)
		}
	}
	report(log, reg, st)
}

// report logs a structured snapshot of the telemetry registry — the same
// numbers /debug/metrics exposes — plus a per-sensor debug line each.
func report(log *slog.Logger, reg *obs.Registry, st *station.Station) {
	v := reg.Values()
	log.Info("station report",
		"sensors", int(v["sbr_station_sensors"]),
		"transmissions", int(v["sbr_station_transmissions_total"]),
		"values", int(v["sbr_station_values_total"]),
		"frames_accepted", int(v["sbr_netio_frames_accepted_total"]),
		"bytes_in", int(v["sbr_netio_bytes_in_total"]),
		"conns_open", int(v["sbr_netio_connections_open"]),
		"rejects_decode", int(v[`sbr_netio_frames_rejected_total{reason="decode"}`]),
		"rejects_receive", int(v[`sbr_netio_frames_rejected_total{reason="receive"}`]),
		"index_depth", int(v["sbr_station_index_depth"]),
		"base_inserts", int(v["sbr_core_base_inserts_total"]),
	)
	for _, id := range st.Sensors() {
		stats, err := st.SensorStats(id)
		if err != nil {
			continue
		}
		log.Debug("sensor report", "sensor", id,
			"transmissions", stats.Transmissions,
			"quantities", stats.Quantities,
			"samples_per_row", stats.SamplesPerRow,
			"values", stats.Values,
			"restarts", stats.Restarts,
		)
	}
}

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}
