// Command benchreport turns `go test -bench` output into a small JSON
// record of the encode fast path's benchmark trajectory: for every
// benchmark it captures ns/op, B/op and allocs/op, and when a baseline
// file provides the pre-optimisation numbers it also reports the speedup.
// The committed BENCH_pr4.json is produced by `make bench`:
//
//	go test -run '^$' -bench <suite> -benchmem . | benchreport \
//	    -baseline BENCH_baseline.json -out BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measured numbers. BaselineNsPerOp and Speedup
// are present only when the baseline file covers the benchmark. Extras
// holds any custom units the benchmark reported via b.ReportMetric (e.g.
// the mixed-workload suite's ingest-p99-ns), with the baseline's values —
// and the baseline/current ratio per shared unit — alongside when known.
type Result struct {
	Name             string             `json:"name"`
	NsPerOp          float64            `json:"ns_per_op"`
	BytesPerOp       int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp      int64              `json:"allocs_per_op,omitempty"`
	Extras           map[string]float64 `json:"extras,omitempty"`
	BaselineNsPerOp  float64            `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsOp int64              `json:"baseline_allocs_per_op,omitempty"`
	BaselineExtras   map[string]float64 `json:"baseline_extras,omitempty"`
	Speedup          float64            `json:"speedup,omitempty"`
	ExtraRatios      map[string]float64 `json:"extra_ratios,omitempty"`
}

// Baseline mirrors the committed pre-optimisation measurements.
type Baseline struct {
	Note       string   `json:"note"`
	Benchmarks []Result `json:"benchmarks"`
}

// Report is the emitted document.
type Report struct {
	Note       string   `json:"note"`
	Baseline   string   `json:"baseline_note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkEncodeAutoIns-8   1012   2357418 ns/op   441881 B/op   1126 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "", "JSON file with pre-optimisation numbers (optional)")
	out := flag.String("out", "-", "output path, or - for stdout")
	note := flag.String("note", "Encode fast-path benchmark trajectory", "free-form note stored in the report")
	flag.Parse()

	base := map[string]Result{}
	var baseNote string
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var b Baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
		}
		baseNote = b.Note
		for _, r := range b.Benchmarks {
			base[r.Name] = r
		}
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		// Custom b.ReportMetric units trail ns/op as "<value> <unit>" pairs.
		fields := strings.Fields(sc.Text())
		for i := 2; i+1 < len(fields); i++ {
			unit := fields[i+1]
			switch unit {
			case "ns/op", "B/op", "allocs/op":
				continue
			}
			if !strings.Contains(unit, "-") && !strings.Contains(unit, "/") {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Extras == nil {
				r.Extras = map[string]float64{}
			}
			r.Extras[unit] = v
			i++ // consume the unit token
		}
		if b, ok := base[r.Name]; ok && r.NsPerOp > 0 {
			r.BaselineNsPerOp = b.NsPerOp
			r.BaselineAllocsOp = b.AllocsPerOp
			r.Speedup = math.Round(b.NsPerOp/r.NsPerOp*100) / 100
			if len(b.Extras) > 0 {
				r.BaselineExtras = b.Extras
				for unit, bv := range b.Extras {
					cv, ok := r.Extras[unit]
					if !ok || cv == 0 {
						continue
					}
					if r.ExtraRatios == nil {
						r.ExtraRatios = map[string]float64{}
					}
					r.ExtraRatios[unit] = math.Round(bv/cv*100) / 100
				}
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	doc, err := json.MarshalIndent(Report{Note: *note, Baseline: baseNote, Benchmarks: results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
