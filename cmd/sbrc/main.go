// Command sbrc is the SBR compressor as a command-line tool: it reads a
// multi-column CSV of time series, compresses it with SBR (or one of the
// baseline methods) at a chosen compression ratio, decodes it back, and
// reports per-column errors. With -out it writes the reconstruction, and
// with -gen it first synthesises one of the evaluation datasets.
//
// Examples:
//
//	sbrc -gen weather -o weather.csv          # synthesise a dataset
//	sbrc -in weather.csv -ratio 0.1           # compress and report errors
//	sbrc -in weather.csv -method wavelet      # baseline comparison
//	sbrc -in weather.csv -out approx.csv      # write the reconstruction
package main

import (
	"flag"
	"fmt"
	"os"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/dct"
	"sbr/internal/dft"
	"sbr/internal/histogram"
	"sbr/internal/linreg"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wavelet"
	"sbr/internal/wire"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV (columns = series, header row)")
		out     = flag.String("out", "", "write the reconstruction CSV here")
		gen     = flag.String("gen", "", "generate a dataset instead: weather|phone|stock|mixed|netflow")
		genOut  = flag.String("o", "dataset.csv", "output path for -gen")
		seed    = flag.Int64("seed", 42, "generator seed for -gen")
		ratio   = flag.Float64("ratio", 0.10, "compression ratio (TotalBand / data size)")
		mbase   = flag.Int("mbase", 0, "base-signal buffer in values (default: 10% of data)")
		method  = flag.String("method", "sbr", "sbr|wavelet|dct|dft|histogram|linreg")
		metricF = flag.String("metric", "sse", "sbr error metric: sse|relative|maxabs")
		builder = flag.String("builder", "getbase", "sbr base construction: getbase|lowmem|svd|dct|none")
		quad    = flag.Bool("quadratic", false, "sbr: use the quadratic (non-linear) encoding extension")
	)
	flag.Parse()

	if *gen != "" {
		if err := generate(*gen, *seed, *genOut); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "need -in <csv> (or -gen <dataset>)")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	labels, rows, err := datagen.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(rows) == 0 || len(rows[0]) == 0 {
		fatal(fmt.Errorf("no data in %s", *in))
	}
	n := len(rows) * len(rows[0])
	budget := int(*ratio * float64(n))

	var approx []timeseries.Series
	switch *method {
	case "sbr":
		approx, err = runSBR(rows, budget, *mbase, *metricF, *builder, *quad)
		if err != nil {
			fatal(err)
		}
	case "wavelet":
		approx = wavelet.ApproximateRows(rows, budget)
	case "dct":
		approx = dct.ApproximateRows(rows, budget)
	case "dft":
		approx = dft.ApproximateRows(rows, budget)
	case "histogram":
		approx = histogram.ApproximateRows(rows, budget)
	case "linreg":
		approx = linreg.Adaptive(rows, budget, metrics.SSE)
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	fmt.Printf("%-14s %14s %14s %12s\n", "series", "MSE", "rel-SSE", "max-abs")
	y := timeseries.Concat(rows...)
	yh := timeseries.Concat(approx...)
	for i, label := range labels {
		fmt.Printf("%-14s %14.6g %14.6g %12.6g\n", label,
			metrics.MeanSquared(rows[i], approx[i]),
			metrics.SumSquaredRelative(rows[i], approx[i], metrics.DefaultSanity),
			metrics.MaxAbsolute(rows[i], approx[i]))
	}
	fmt.Printf("%-14s %14.6g %14.6g %12.6g\n", "TOTAL",
		metrics.MeanSquared(y, yh),
		metrics.SumSquaredRelative(y, yh, metrics.DefaultSanity),
		metrics.MaxAbsolute(y, yh))
	fmt.Printf("method=%s ratio=%.2f budget=%d values (of %d)\n", *method, *ratio, budget, n)

	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer g.Close()
		if err := datagen.WriteCSV(g, labels, approx); err != nil {
			fatal(err)
		}
		fmt.Printf("reconstruction written to %s\n", *out)
	}
}

func runSBR(rows []timeseries.Series, budget, mbase int, metricName, builderName string, quadratic bool) ([]timeseries.Series, error) {
	kind, err := parseMetric(metricName)
	if err != nil {
		return nil, err
	}
	b, err := parseBuilder(builderName)
	if err != nil {
		return nil, err
	}
	if mbase == 0 {
		mbase = budget
	}
	cfg := core.Config{TotalBand: budget, MBase: mbase, Metric: kind, Builder: b, Quadratic: quadratic}
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	t, err := comp.Encode(rows)
	if err != nil {
		return nil, err
	}
	// Round-trip through the wire format, as a real deployment would.
	frame, err := wire.Encode(t)
	if err != nil {
		return nil, err
	}
	back, err := wire.DecodeBytes(frame)
	if err != nil {
		return nil, err
	}
	approx, err := dec.Decode(back)
	if err != nil {
		return nil, err
	}
	fmt.Printf("transmission: %d values (%d base intervals, %d interval records), frame %d bytes\n",
		t.Cost, t.Ins(), len(t.Intervals), len(frame))
	return approx, nil
}

func parseMetric(s string) (metrics.Kind, error) {
	switch s {
	case "sse":
		return metrics.SSE, nil
	case "relative":
		return metrics.RelativeSSE, nil
	case "maxabs":
		return metrics.MaxAbs, nil
	default:
		return 0, fmt.Errorf("unknown metric %q", s)
	}
}

func parseBuilder(s string) (core.BaseBuilder, error) {
	switch s {
	case "getbase":
		return core.BuilderGetBase, nil
	case "lowmem":
		return core.BuilderGetBaseLowMem, nil
	case "svd":
		return core.BuilderSVD, nil
	case "dct":
		return core.BuilderDCT, nil
	case "none":
		return core.BuilderNone, nil
	default:
		return 0, fmt.Errorf("unknown builder %q", s)
	}
}

func generate(name string, seed int64, path string) error {
	var ds *datagen.Dataset
	switch name {
	case "weather":
		ds = datagen.Weather(seed)
	case "phone":
		ds = datagen.PhoneCalls(seed)
	case "stock":
		ds = datagen.Stocks(seed)
	case "mixed":
		ds = datagen.Mixed(seed)
	case "netflow":
		ds = datagen.NetworkTraffic(seed)
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := datagen.WriteCSV(f, ds.Labels, ds.Rows); err != nil {
		return err
	}
	fmt.Printf("%s dataset (%d series × %d samples) written to %s\n",
		ds.Name, ds.N(), len(ds.Rows[0]), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbrc:", err)
	os.Exit(1)
}
